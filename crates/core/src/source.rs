//! The source-side abstraction: how the engine iterates over input tensors.
//!
//! Chou et al. (2018) describe iteration over coordinate hierarchies through
//! level functions; the engine captures the consequences of those level
//! functions that matter for conversion as a small trait: a way to visit
//! every nonzero with its canonical coordinates, plus the properties the
//! planner consults (are nonzeros grouped by row and visited in row order?
//! can per-row counts be read off the structure without touching nonzeros?).

use sparse_formats::{
    BcsrMatrix, CooMatrix, CooTensor, CscMatrix, CsfTensor, CsrMatrix, DiaMatrix, DokMatrix,
    EllMatrix, JadMatrix, SkylineMatrix,
};
use sparse_tensor::{Shape, Value};

/// A matrix the conversion engine can read.
///
/// `for_each` visits nonzeros in the format's storage order with their
/// canonical `(row, column, value)`; the remaining methods expose the
/// structural properties and analysis fast paths the planner uses
/// (Sections 4.2 and 5.2).
pub trait SourceMatrix {
    /// Number of rows.
    fn rows(&self) -> usize;

    /// Number of columns.
    fn cols(&self) -> usize;

    /// Number of stored nonzeros.
    fn nnz(&self) -> usize;

    /// Visits every nonzero in storage order.
    fn for_each<F: FnMut(usize, usize, Value)>(&self, f: F);

    /// True when nonzeros are grouped by row and rows are visited in
    /// ascending order (lets the planner use scalar counters and sequenced
    /// edge insertion).
    fn rows_in_order(&self) -> bool {
        false
    }

    /// True when the format stores only structural nonzeros (no padding), the
    /// precondition of the `simplify-width-count` rewrite.
    fn stores_only_nonzeros(&self) -> bool {
        true
    }

    /// Per-row nonzero counts. The default makes a counting pass; formats
    /// with a row `pos` array answer it by differencing (the optimised query
    /// of Section 5.2).
    fn row_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.rows()];
        self.for_each(|i, _, _| counts[i] += 1);
        counts
    }

    /// Per-column nonzero counts (dual of [`SourceMatrix::row_counts`]).
    fn col_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.cols()];
        self.for_each(|_, j, _| counts[j] += 1);
        counts
    }
}

/// An order-`N` tensor the conversion engine can read — the rank-generic
/// counterpart of [`SourceMatrix`].
///
/// `for_each_coord` visits nonzeros in the format's storage order with their
/// full canonical coordinate tuple; `coords_in_order` reports whether that
/// order is already lexicographic (CSF walks its fiber tree in sorted order,
/// so sort-based kernels can skip their sorting pass).
pub trait SourceTensor {
    /// The tensor's canonical shape.
    fn shape(&self) -> &Shape;

    /// Number of stored nonzeros.
    fn nnz(&self) -> usize;

    /// Visits every nonzero in storage order with its coordinate tuple.
    fn for_each_coord<F: FnMut(&[i64], Value)>(&self, f: F);

    /// True when nonzeros are visited in lexicographic coordinate order.
    fn coords_in_order(&self) -> bool {
        false
    }
}

impl SourceTensor for CooTensor {
    fn shape(&self) -> &Shape {
        CooTensor::shape(self)
    }

    fn nnz(&self) -> usize {
        CooTensor::nnz(self)
    }

    fn for_each_coord<F: FnMut(&[i64], Value)>(&self, f: F) {
        self.for_each(f);
    }
}

impl SourceTensor for CsfTensor {
    fn shape(&self) -> &Shape {
        CsfTensor::shape(self)
    }

    fn nnz(&self) -> usize {
        CsfTensor::nnz(self)
    }

    fn for_each_coord<F: FnMut(&[i64], Value)>(&self, f: F) {
        self.for_each(f);
    }

    fn coords_in_order(&self) -> bool {
        // The fiber-tree walk visits coordinates lexicographically.
        true
    }
}

/// Adapts any [`SourceMatrix`] into an order-2 [`SourceTensor`], so the
/// rank-generic kernels (e.g. COO→CSF, which yields DCSR at order 2) accept
/// matrix sources without duplicating iteration code.
pub struct MatrixAsTensor<'a, M: SourceMatrix> {
    shape: Shape,
    inner: &'a M,
}

impl<'a, M: SourceMatrix> MatrixAsTensor<'a, M> {
    /// Wraps a matrix source.
    pub fn new(inner: &'a M) -> Self {
        MatrixAsTensor {
            shape: Shape::matrix(inner.rows(), inner.cols()),
            inner,
        }
    }
}

impl<M: SourceMatrix> SourceTensor for MatrixAsTensor<'_, M> {
    fn shape(&self) -> &Shape {
        &self.shape
    }

    fn nnz(&self) -> usize {
        self.inner.nnz()
    }

    fn for_each_coord<F: FnMut(&[i64], Value)>(&self, mut f: F) {
        self.inner.for_each(|i, j, v| f(&[i as i64, j as i64], v));
    }
}

impl SourceMatrix for CooMatrix {
    fn rows(&self) -> usize {
        CooMatrix::rows(self)
    }

    fn cols(&self) -> usize {
        CooMatrix::cols(self)
    }

    fn nnz(&self) -> usize {
        CooMatrix::nnz(self)
    }

    fn for_each<F: FnMut(usize, usize, Value)>(&self, mut f: F) {
        for (i, j, v) in self.iter() {
            f(i, j, v);
        }
    }
}

impl SourceMatrix for CsrMatrix {
    fn rows(&self) -> usize {
        CsrMatrix::rows(self)
    }

    fn cols(&self) -> usize {
        CsrMatrix::cols(self)
    }

    fn nnz(&self) -> usize {
        CsrMatrix::nnz(self)
    }

    fn for_each<F: FnMut(usize, usize, Value)>(&self, mut f: F) {
        let pos = self.pos();
        let crd = self.crd();
        let vals = self.values();
        for i in 0..CsrMatrix::rows(self) {
            for p in pos[i]..pos[i + 1] {
                f(i, crd[p], vals[p]);
            }
        }
    }

    fn rows_in_order(&self) -> bool {
        true
    }

    fn row_counts(&self) -> Vec<usize> {
        // The optimised `count(j)` query: pos[i+1] - pos[i], no nonzero pass.
        self.pos().windows(2).map(|w| w[1] - w[0]).collect()
    }
}

impl SourceMatrix for CscMatrix {
    fn rows(&self) -> usize {
        CscMatrix::rows(self)
    }

    fn cols(&self) -> usize {
        CscMatrix::cols(self)
    }

    fn nnz(&self) -> usize {
        CscMatrix::nnz(self)
    }

    fn for_each<F: FnMut(usize, usize, Value)>(&self, mut f: F) {
        let pos = self.pos();
        let crd = self.crd();
        let vals = self.values();
        for j in 0..CscMatrix::cols(self) {
            for p in pos[j]..pos[j + 1] {
                f(crd[p], j, vals[p]);
            }
        }
    }

    fn col_counts(&self) -> Vec<usize> {
        self.pos().windows(2).map(|w| w[1] - w[0]).collect()
    }
}

impl SourceMatrix for DiaMatrix {
    fn rows(&self) -> usize {
        DiaMatrix::rows(self)
    }

    fn cols(&self) -> usize {
        DiaMatrix::cols(self)
    }

    fn nnz(&self) -> usize {
        DiaMatrix::nnz(self)
    }

    fn for_each<F: FnMut(usize, usize, Value)>(&self, mut f: F) {
        let rows = DiaMatrix::rows(self);
        let cols = DiaMatrix::cols(self) as i64;
        let vals = self.values();
        for (d, &k) in self.offsets().iter().enumerate() {
            for i in 0..rows {
                let j = i as i64 + k;
                if j < 0 || j >= cols {
                    continue;
                }
                let v = vals[d * rows + i];
                if v != 0.0 {
                    f(i, j as usize, v);
                }
            }
        }
    }

    fn stores_only_nonzeros(&self) -> bool {
        false
    }
}

impl SourceMatrix for EllMatrix {
    fn rows(&self) -> usize {
        EllMatrix::rows(self)
    }

    fn cols(&self) -> usize {
        EllMatrix::cols(self)
    }

    fn nnz(&self) -> usize {
        EllMatrix::nnz(self)
    }

    fn for_each<F: FnMut(usize, usize, Value)>(&self, mut f: F) {
        let rows = EllMatrix::rows(self);
        let crd = self.crd();
        let vals = self.values();
        for k in 0..self.slices() {
            for i in 0..rows {
                let v = vals[k * rows + i];
                if v != 0.0 {
                    f(i, crd[k * rows + i], v);
                }
            }
        }
    }

    fn stores_only_nonzeros(&self) -> bool {
        false
    }
}

impl SourceMatrix for BcsrMatrix {
    fn rows(&self) -> usize {
        BcsrMatrix::rows(self)
    }

    fn cols(&self) -> usize {
        BcsrMatrix::cols(self)
    }

    fn nnz(&self) -> usize {
        BcsrMatrix::nnz(self)
    }

    fn for_each<F: FnMut(usize, usize, Value)>(&self, mut f: F) {
        let (br, bc) = self.block_shape();
        let bsize = br * bc;
        let pos = self.pos();
        let crd = self.crd();
        let vals = self.values();
        for bi in 0..pos.len() - 1 {
            for p in pos[bi]..pos[bi + 1] {
                for li in 0..br {
                    for lj in 0..bc {
                        let v = vals[p * bsize + li * bc + lj];
                        let (i, j) = (bi * br + li, crd[p] * bc + lj);
                        if v != 0.0 && i < BcsrMatrix::rows(self) && j < BcsrMatrix::cols(self) {
                            f(i, j, v);
                        }
                    }
                }
            }
        }
    }

    fn rows_in_order(&self) -> bool {
        false
    }

    fn stores_only_nonzeros(&self) -> bool {
        false
    }
}

impl SourceMatrix for SkylineMatrix {
    fn rows(&self) -> usize {
        self.dim()
    }

    fn cols(&self) -> usize {
        self.dim()
    }

    fn nnz(&self) -> usize {
        self.to_triples().nnz()
    }

    fn for_each<F: FnMut(usize, usize, Value)>(&self, mut f: F) {
        let pos = self.pos();
        let first = self.first();
        let vals = self.values();
        for i in 0..self.dim() {
            for (off, j) in (first[i]..=i).enumerate() {
                let v = vals[pos[i] + off];
                if v != 0.0 {
                    f(i, j, v);
                }
            }
        }
    }

    fn rows_in_order(&self) -> bool {
        true
    }

    fn stores_only_nonzeros(&self) -> bool {
        false
    }
}

impl SourceMatrix for JadMatrix {
    fn rows(&self) -> usize {
        JadMatrix::rows(self)
    }

    fn cols(&self) -> usize {
        JadMatrix::cols(self)
    }

    fn nnz(&self) -> usize {
        JadMatrix::nnz(self)
    }

    fn for_each<F: FnMut(usize, usize, Value)>(&self, mut f: F) {
        for t in self.to_triples().iter() {
            f(t.coord[0] as usize, t.coord[1] as usize, t.value);
        }
    }
}

impl SourceMatrix for DokMatrix {
    fn rows(&self) -> usize {
        DokMatrix::rows(self)
    }

    fn cols(&self) -> usize {
        DokMatrix::cols(self)
    }

    fn nnz(&self) -> usize {
        DokMatrix::nnz(self)
    }

    fn for_each<F: FnMut(usize, usize, Value)>(&self, mut f: F) {
        for t in self.to_triples().iter() {
            f(t.coord[0] as usize, t.coord[1] as usize, t.value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_tensor::example::figure1_matrix;
    use sparse_tensor::SparseTriples;

    fn collect<S: SourceMatrix>(s: &S) -> SparseTriples {
        let mut t = SparseTriples::new(sparse_tensor::Shape::matrix(s.rows(), s.cols()));
        s.for_each(|i, j, v| t.push(vec![i as i64, j as i64], v).expect("in bounds"));
        t
    }

    #[test]
    fn all_sources_iterate_the_same_nonzeros() {
        let t = figure1_matrix();
        assert!(collect(&CooMatrix::from_triples(&t)).same_values(&t));
        assert!(collect(&CsrMatrix::from_triples(&t)).same_values(&t));
        assert!(collect(&CscMatrix::from_triples(&t)).same_values(&t));
        assert!(collect(&DiaMatrix::from_triples(&t)).same_values(&t));
        assert!(collect(&EllMatrix::from_triples(&t)).same_values(&t));
        assert!(collect(&BcsrMatrix::from_triples(&t, 2, 2)).same_values(&t));
        assert!(collect(&JadMatrix::from_triples(&t)).same_values(&t));
        assert!(collect(&DokMatrix::from_triples(&t)).same_values(&t));
    }

    #[test]
    fn row_count_fast_path_matches_default() {
        let t = figure1_matrix();
        let csr = CsrMatrix::from_triples(&t);
        let coo = CooMatrix::from_triples(&t);
        assert_eq!(
            SourceMatrix::row_counts(&csr),
            SourceMatrix::row_counts(&coo)
        );
        assert_eq!(SourceMatrix::row_counts(&csr), vec![2, 2, 2, 3]);
        let csc = CscMatrix::from_triples(&t);
        assert_eq!(
            SourceMatrix::col_counts(&csc),
            SourceMatrix::col_counts(&coo)
        );
    }

    #[test]
    fn properties_reflect_storage() {
        let t = figure1_matrix();
        assert!(SourceMatrix::rows_in_order(&CsrMatrix::from_triples(&t)));
        assert!(!SourceMatrix::rows_in_order(&CooMatrix::from_triples(&t)));
        assert!(!SourceMatrix::rows_in_order(&CscMatrix::from_triples(&t)));
        assert!(SourceMatrix::stores_only_nonzeros(
            &CsrMatrix::from_triples(&t)
        ));
        assert!(!SourceMatrix::stores_only_nonzeros(
            &DiaMatrix::from_triples(&t)
        ));
    }

    #[test]
    fn tensor_sources_iterate_the_same_nonzeros() {
        let t = sparse_tensor::example::example3_tensor();
        let coo = CooTensor::from_triples(&t);
        let csf = CsfTensor::from_triples(&t);
        let mut coo_seen = SparseTriples::new(t.shape().clone());
        SourceTensor::for_each_coord(&coo, |c, v| coo_seen.push(c.to_vec(), v).unwrap());
        assert_eq!(coo_seen, t, "COO preserves source order");
        let mut csf_seen = SparseTriples::new(t.shape().clone());
        SourceTensor::for_each_coord(&csf, |c, v| csf_seen.push(c.to_vec(), v).unwrap());
        assert!(csf_seen.is_sorted(), "CSF iterates in fiber-tree order");
        assert!(csf_seen.same_values(&t));
        assert!(!SourceTensor::coords_in_order(&coo));
        assert!(SourceTensor::coords_in_order(&csf));
        assert_eq!(SourceTensor::nnz(&csf), 8);
        assert_eq!(SourceTensor::shape(&coo).dims(), &[3, 4, 5]);
    }

    #[test]
    fn matrix_as_tensor_adapts_order_2_sources() {
        let t = figure1_matrix();
        let csr = CsrMatrix::from_triples(&t);
        let adapted = MatrixAsTensor::new(&csr);
        assert_eq!(
            SourceTensor::shape(&adapted),
            &sparse_tensor::Shape::matrix(4, 6)
        );
        assert_eq!(SourceTensor::nnz(&adapted), 9);
        let mut seen = SparseTriples::new(sparse_tensor::Shape::matrix(4, 6));
        adapted.for_each_coord(|c, v| seen.push(c.to_vec(), v).unwrap());
        assert!(seen.same_values(&t));
    }

    #[test]
    fn skyline_source_iterates_lower_triangle() {
        let lower =
            SparseTriples::from_matrix_entries(3, 3, vec![(0, 0, 1.0), (2, 0, 2.0), (2, 2, 3.0)])
                .unwrap();
        let sky = SkylineMatrix::from_triples(&lower);
        assert!(collect(&sky).same_values(&lower));
        assert_eq!(SourceMatrix::nnz(&sky), 3);
    }
}
