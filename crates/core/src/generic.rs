//! The specification-driven (dynamic) conversion path.
//!
//! The engine kernels in [`crate::engine`] are monomorphised for the built-in
//! formats. This module is the fully dynamic counterpart: it converts a
//! matrix into *any* format described by a [`FormatSpec`] — including
//! user-defined custom formats — by literally executing the recipe of
//! Figure 12 with level assemblers, the remapping evaluator, and the
//! attribute-query evaluator. It is slower than the engine (that gap is
//! measured by the `ablations` benchmark) but places no restriction on the
//! level composition.

use attr_query::eval::evaluate_on_coords;
use attr_query::{AttrQuery, QueryResult};
use coord_remap::{BoundsEnv, EvalContext, Remapping};
use level_formats::{
    BandedLevel, CompressedLevel, DenseLevel, EdgeInsertion, HashedLevel, LevelAssembler,
    LevelKind, LevelProperties, PositionKind, SingletonLevel, SlicedLevel, SqueezedLevel,
};
use sparse_tensor::{DimBounds, Value};
use std::collections::HashMap;

use crate::convert::AnyMatrix;
use crate::error::ConvertError;
use crate::spec::FormatSpec;

/// The assembled data of one output level.
#[derive(Debug, Clone, PartialEq)]
pub enum LevelOutput {
    /// Dense level: nothing stored beyond the extent.
    Dense {
        /// Dimension extent.
        extent: usize,
    },
    /// Compressed level: `pos` and `crd` arrays.
    Compressed {
        /// Parent-to-children offsets.
        pos: Vec<usize>,
        /// Child coordinates.
        crd: Vec<i64>,
    },
    /// Singleton level: one coordinate per position.
    Singleton {
        /// Stored coordinates.
        crd: Vec<i64>,
    },
    /// Sliced level: the analysed slice count.
    Sliced {
        /// Number of slices `K`.
        slices: usize,
    },
    /// Squeezed level: the stored coordinate values.
    Squeezed {
        /// Stored coordinate values (e.g. DIA diagonal offsets).
        perm: Vec<i64>,
    },
    /// Banded level: run offsets and first stored coordinate per parent.
    Banded {
        /// Run offsets.
        pos: Vec<usize>,
        /// First stored coordinate per parent.
        first: Vec<usize>,
    },
    /// Hashed level: interned `(parent position, coordinate)` pairs.
    Hashed {
        /// Interned coordinates in insertion order.
        coords: Vec<(usize, i64)>,
    },
}

/// A tensor assembled from a [`FormatSpec`] by the dynamic converter.
#[derive(Debug, Clone, PartialEq)]
pub struct CustomTensor {
    /// The format specification the tensor was assembled for.
    pub spec: FormatSpec,
    /// The assembled level data, outermost first.
    pub levels: Vec<LevelOutput>,
    /// The value array, indexed by the last level's positions.
    pub vals: Vec<Value>,
    /// The canonical (source) matrix shape.
    pub source_shape: (usize, usize),
}

/// A level assembler of any kind, dispatched by enumeration (so that the
/// assembled data can be recovered without downcasting).
#[derive(Debug, Clone)]
pub enum AnyLevel {
    /// Dense level assembler.
    Dense(DenseLevel),
    /// Compressed level assembler (unique or non-unique).
    Compressed(CompressedLevel),
    /// Singleton level assembler.
    Singleton(SingletonLevel),
    /// Sliced level assembler.
    Sliced(SlicedLevel),
    /// Squeezed level assembler.
    Squeezed(SqueezedLevel),
    /// Banded level assembler.
    Banded(BandedLevel),
    /// Hashed level assembler.
    Hashed(HashedLevel),
}

macro_rules! each_level {
    ($self:expr, $l:ident => $e:expr) => {
        match $self {
            AnyLevel::Dense($l) => $e,
            AnyLevel::Compressed($l) => $e,
            AnyLevel::Singleton($l) => $e,
            AnyLevel::Sliced($l) => $e,
            AnyLevel::Squeezed($l) => $e,
            AnyLevel::Banded($l) => $e,
            AnyLevel::Hashed($l) => $e,
        }
    };
}

impl LevelAssembler for AnyLevel {
    fn kind(&self) -> LevelKind {
        each_level!(self, l => l.kind())
    }

    fn properties(&self) -> LevelProperties {
        each_level!(self, l => l.properties())
    }

    fn required_query(&self, dims: &[String], level: usize) -> Option<AttrQuery> {
        each_level!(self, l => l.required_query(dims, level))
    }

    fn edge_insertion(&self) -> EdgeInsertion {
        each_level!(self, l => l.edge_insertion())
    }

    fn position_kind(&self) -> PositionKind {
        each_level!(self, l => l.position_kind())
    }

    fn size(&self, parent_size: usize) -> usize {
        each_level!(self, l => l.size(parent_size))
    }

    fn init_edges(&mut self, parent_size: usize, sequenced: bool, q: Option<&QueryResult>) {
        each_level!(self, l => l.init_edges(parent_size, sequenced, q))
    }

    fn insert_edges(
        &mut self,
        parent_pos: usize,
        parent_coords: &[i64],
        sequenced: bool,
        q: Option<&QueryResult>,
    ) {
        each_level!(self, l => l.insert_edges(parent_pos, parent_coords, sequenced, q))
    }

    fn finalize_edges(&mut self, parent_size: usize, sequenced: bool) {
        each_level!(self, l => l.finalize_edges(parent_size, sequenced))
    }

    fn init_coords(&mut self, parent_size: usize, q: Option<&QueryResult>) {
        each_level!(self, l => l.init_coords(parent_size, q))
    }

    fn init_pos(&mut self, parent_size: usize) {
        each_level!(self, l => l.init_pos(parent_size))
    }

    fn position(&mut self, parent_pos: usize, coords: &[i64]) -> usize {
        each_level!(self, l => l.position(parent_pos, coords))
    }

    fn insert_coord(&mut self, parent_pos: usize, pos: usize, coords: &[i64]) {
        each_level!(self, l => l.insert_coord(parent_pos, pos, coords))
    }

    fn finalize_pos(&mut self, parent_size: usize) {
        each_level!(self, l => l.finalize_pos(parent_size))
    }
}

impl AnyLevel {
    /// Extracts the assembled data.
    pub fn into_output(self, bounds: DimBounds) -> LevelOutput {
        match self {
            AnyLevel::Dense(_) => LevelOutput::Dense {
                extent: bounds.extent(),
            },
            AnyLevel::Compressed(level) => {
                let (pos, crd) = level.into_arrays();
                LevelOutput::Compressed { pos, crd }
            }
            AnyLevel::Singleton(level) => LevelOutput::Singleton {
                crd: level.into_crd(),
            },
            AnyLevel::Sliced(level) => LevelOutput::Sliced {
                slices: level.slice_count(),
            },
            AnyLevel::Squeezed(level) => LevelOutput::Squeezed {
                perm: level.into_perm(),
            },
            AnyLevel::Banded(level) => {
                let (pos, first) = level.into_arrays();
                LevelOutput::Banded { pos, first }
            }
            AnyLevel::Hashed(level) => LevelOutput::Hashed {
                coords: level.coords().to_vec(),
            },
        }
    }
}

/// Builds a level assembler for a level kind over the given coordinate
/// bounds.
pub fn make_assembler(kind: LevelKind, bounds: DimBounds) -> AnyLevel {
    match kind {
        LevelKind::Dense => {
            AnyLevel::Dense(DenseLevel::with_lower_bound(bounds.extent(), bounds.lower))
        }
        LevelKind::Compressed => AnyLevel::Compressed(CompressedLevel::new()),
        LevelKind::CompressedNonUnique => AnyLevel::Compressed(CompressedLevel::non_unique()),
        LevelKind::Singleton => AnyLevel::Singleton(SingletonLevel::new()),
        LevelKind::Sliced => AnyLevel::Sliced(SlicedLevel::new()),
        LevelKind::Squeezed => AnyLevel::Squeezed(SqueezedLevel::new(bounds.lower, bounds.upper)),
        LevelKind::Banded => AnyLevel::Banded(BandedLevel::new()),
        LevelKind::Hashed => AnyLevel::Hashed(HashedLevel::new()),
    }
}

/// Converts a matrix into the format described by `spec`.
///
/// # Errors
///
/// Returns an error when the remapping or a query fails to evaluate, or when
/// the spec's level composition requires edge insertion under a non-full
/// ancestor (a composition the dynamic driver does not support).
pub fn convert_with_spec(src: &AnyMatrix, spec: &FormatSpec) -> Result<CustomTensor, ConvertError> {
    let triples = src.to_triples();
    let rows = src.rows();
    let cols = src.cols();

    // Phase 1: coordinate remapping (Section 4).
    let remapping: &Remapping = &spec.remapping;
    let mut ctx = EvalContext::new(remapping);
    let remapped = ctx.apply_all(&triples)?;

    // Static bounds of each remapped dimension, used to size dense, squeezed,
    // and counter-derived dimensions.
    let env = BoundsEnv::for_remapping(remapping, &[rows, cols]).with_nnz(triples.nnz());
    let bounds = coord_remap::infer_bounds(remapping, &env)?;

    // Phase 2: analysis (Section 5) — evaluate each level's attribute query
    // over the remapped coordinates.
    let coords: Vec<Vec<i64>> = remapped.triples.iter().map(|(c, _)| c.clone()).collect();
    let mut queries: Vec<Option<QueryResult>> = Vec::with_capacity(spec.levels.len());
    let mut assemblers: Vec<AnyLevel> = Vec::with_capacity(spec.levels.len());
    for (k, kind) in spec.levels.iter().enumerate() {
        let assembler = make_assembler(*kind, bounds[k]);
        match assembler.required_query(&spec.dim_names, k) {
            Some(query) => {
                let result = evaluate_on_coords(
                    &query,
                    &spec.dim_names,
                    &bounds,
                    coords.iter().map(|c| c.as_slice()),
                )?;
                queries.push(Some(result));
            }
            None => queries.push(None),
        }
        assemblers.push(assembler);
    }

    // Phase 3: assembly (Section 6, Figure 12), level by level from the top.
    let mut parent_sizes = Vec::with_capacity(spec.levels.len());
    let mut parent_size = 1usize;
    for (k, assembler) in assemblers.iter_mut().enumerate() {
        parent_sizes.push(parent_size);
        let q = queries[k].as_ref();
        if assembler.edge_insertion() == EdgeInsertion::SequencedOrUnsequenced {
            // Enumerate parent positions; this requires every ancestor level
            // to be full (dense-like) so that positions correspond to the
            // cartesian product of ancestor coordinates.
            let ancestors_full = spec.levels[..k]
                .iter()
                .all(|a| matches!(a, LevelKind::Dense | LevelKind::Sliced));
            if k > 0 && !ancestors_full {
                return Err(ConvertError::Unsupported(format!(
                    "level {k} ({}) needs edge insertion under a non-full ancestor",
                    spec.levels[k]
                )));
            }
            assembler.init_edges(parent_size, true, q);
            for (pos, parent_coords) in enumerate_full_positions(&bounds[..k]) {
                assembler.insert_edges(pos, &parent_coords, true, q);
            }
            assembler.finalize_edges(parent_size, true);
        }
        assembler.init_coords(parent_size, q);
        assembler.init_pos(parent_size);
        parent_size = assembler.size(parent_size);
    }
    let total = parent_size;

    // Coordinate insertion: one pass over the remapped nonzeros, walking the
    // level chain to compute each nonzero's position. Levels that yield
    // positions but must stay duplicate-free (e.g. an intermediate block
    // level) are deduplicated on the fly, as Section 6.2 describes.
    let mut vals = vec![0.0; total];
    let mut dedup: Vec<HashMap<(usize, i64), usize>> =
        (0..spec.levels.len()).map(|_| HashMap::new()).collect();
    for (coord, value) in &remapped.triples {
        let mut pos = 0usize;
        for (k, assembler) in assemblers.iter_mut().enumerate() {
            let prefix = &coord[..=k];
            let is_last = k + 1 == spec.levels.len();
            let needs_dedup = assembler.position_kind() == PositionKind::Yield
                && !is_last
                && assembler.properties().unique;
            let next = if needs_dedup {
                let key = (pos, coord[k]);
                if let Some(&existing) = dedup[k].get(&key) {
                    existing
                } else {
                    let fresh = assembler.position(pos, prefix);
                    assembler.insert_coord(pos, fresh, prefix);
                    dedup[k].insert(key, fresh);
                    fresh
                }
            } else {
                let fresh = assembler.position(pos, prefix);
                assembler.insert_coord(pos, fresh, prefix);
                fresh
            };
            pos = next;
        }
        // Levels whose size is only known as coordinates are interned (e.g.
        // hashed levels) grow the value array on demand.
        if pos >= vals.len() {
            vals.resize(pos + 1, 0.0);
        }
        vals[pos] = *value;
    }
    for (k, assembler) in assemblers.iter_mut().enumerate() {
        assembler.finalize_pos(parent_sizes[k]);
    }

    // Extract per-level outputs.
    let levels: Vec<LevelOutput> = assemblers
        .into_iter()
        .enumerate()
        .map(|(k, assembler)| assembler.into_output(bounds[k]))
        .collect();
    Ok(CustomTensor {
        spec: spec.clone(),
        levels,
        vals,
        source_shape: (rows, cols),
    })
}

/// Enumerates the positions (and coordinate tuples) of a chain of full
/// levels, in position order.
fn enumerate_full_positions(bounds: &[DimBounds]) -> Vec<(usize, Vec<i64>)> {
    let mut out = vec![(0usize, Vec::new())];
    for b in bounds {
        let mut next = Vec::with_capacity(out.len() * b.extent());
        for (pos, coords) in &out {
            for (offset, c) in (b.lower..b.upper).enumerate() {
                let mut extended = coords.clone();
                extended.push(c);
                next.push((pos * b.extent() + offset, extended));
            }
        }
        out = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::{AnyMatrix, FormatId};
    use crate::engine;
    use sparse_formats::{CooMatrix, CsrMatrix, DiaMatrix, EllMatrix};
    use sparse_tensor::example::figure1_matrix;
    use sparse_tensor::SparseTriples;

    fn coo_src() -> AnyMatrix {
        AnyMatrix::Coo(CooMatrix::from_triples(&figure1_matrix()))
    }

    #[test]
    fn dynamic_csr_matches_engine_csr() {
        let spec = FormatSpec::stock(FormatId::Csr).unwrap();
        let custom = convert_with_spec(&coo_src(), &spec).unwrap();
        let reference = engine::to_csr(&CooMatrix::from_triples(&figure1_matrix()));
        match &custom.levels[1] {
            LevelOutput::Compressed { pos, crd } => {
                assert_eq!(pos, reference.pos());
                let crd_usize: Vec<usize> = crd.iter().map(|&c| c as usize).collect();
                assert_eq!(crd_usize, reference.crd());
            }
            other => panic!("unexpected level output {other:?}"),
        }
        assert_eq!(custom.vals, reference.values());
    }

    #[test]
    fn dynamic_dia_matches_engine_dia() {
        let spec = FormatSpec::stock(FormatId::Dia).unwrap();
        let custom = convert_with_spec(&coo_src(), &spec).unwrap();
        let reference = engine::to_dia(&CooMatrix::from_triples(&figure1_matrix()));
        match &custom.levels[0] {
            LevelOutput::Squeezed { perm } => assert_eq!(perm, reference.offsets()),
            other => panic!("unexpected level output {other:?}"),
        }
        assert_eq!(custom.vals, reference.values());
    }

    #[test]
    fn dynamic_ell_matches_engine_ell() {
        let spec = FormatSpec::stock(FormatId::Ell).unwrap();
        let custom = convert_with_spec(&coo_src(), &spec).unwrap();
        let reference = engine::to_ell(&CooMatrix::from_triples(&figure1_matrix()));
        match &custom.levels[0] {
            LevelOutput::Sliced { slices } => assert_eq!(*slices, reference.slices()),
            other => panic!("unexpected level output {other:?}"),
        }
        match &custom.levels[2] {
            LevelOutput::Singleton { crd } => {
                let crd_usize: Vec<usize> = crd.iter().map(|&c| c as usize).collect();
                assert_eq!(crd_usize, reference.crd());
            }
            other => panic!("unexpected level output {other:?}"),
        }
        assert_eq!(custom.vals, reference.values());
    }

    #[test]
    fn dynamic_coo_target_keeps_duplicless_row_entries() {
        let spec = FormatSpec::stock(FormatId::Coo).unwrap();
        let custom = convert_with_spec(&coo_src(), &spec).unwrap();
        match (&custom.levels[0], &custom.levels[1]) {
            (LevelOutput::Compressed { pos, crd }, LevelOutput::Singleton { crd: cols }) => {
                assert_eq!(pos, &[0, 9]);
                assert_eq!(crd, &[0, 0, 1, 1, 2, 2, 3, 3, 3]);
                assert_eq!(cols, &[0, 1, 1, 2, 0, 2, 1, 3, 4]);
            }
            other => panic!("unexpected level outputs {other:?}"),
        }
        assert_eq!(custom.vals, &[5.0, 1.0, 7.0, 3.0, 8.0, 2.0, 4.0, 9.0, 6.0]);
    }

    #[test]
    fn dynamic_custom_blocked_format_assembles() {
        // A custom blocked format built from the spec language alone: blocks
        // interned in a hash level, block contents dense.
        let spec = FormatSpec::new(
            "BLOCK-HASH",
            coord_remap::stock::bcsr_with_blocks(2, 2),
            vec!["bi", "bj", "li", "lj"],
            vec![
                LevelKind::Dense,
                LevelKind::Hashed,
                LevelKind::Dense,
                LevelKind::Dense,
            ],
        );
        let custom = convert_with_spec(&coo_src(), &spec).unwrap();
        match &custom.levels[1] {
            LevelOutput::Hashed { coords } => assert!(!coords.is_empty()),
            other => panic!("unexpected level output {other:?}"),
        }
        assert_eq!(custom.vals.iter().filter(|&&v| v != 0.0).count(), 9);
    }

    #[test]
    fn dynamic_skyline_assembles_lower_triangles() {
        let lower = SparseTriples::from_matrix_entries(
            4,
            4,
            vec![
                (0, 0, 1.0),
                (1, 1, 2.0),
                (2, 0, 3.0),
                (2, 2, 4.0),
                (3, 2, 5.0),
                (3, 3, 6.0),
            ],
        )
        .unwrap();
        let src = AnyMatrix::Csr(CsrMatrix::from_triples(&lower));
        let custom =
            convert_with_spec(&src, &FormatSpec::stock(FormatId::Skyline).unwrap()).unwrap();
        match &custom.levels[1] {
            LevelOutput::Banded { pos, first } => {
                assert_eq!(pos, &[0, 1, 2, 5, 7]);
                assert_eq!(first, &[0, 1, 0, 2]);
            }
            other => panic!("unexpected level output {other:?}"),
        }
        assert_eq!(custom.vals, &[1.0, 2.0, 3.0, 0.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn dynamic_path_accepts_structured_sources() {
        let dia = AnyMatrix::Dia(DiaMatrix::from_triples(&figure1_matrix()));
        let spec = FormatSpec::stock(FormatId::Csr).unwrap();
        let custom = convert_with_spec(&dia, &spec).unwrap();
        let reference = engine::to_csr(&DiaMatrix::from_triples(&figure1_matrix()));
        assert_eq!(custom.vals, reference.values());
        let ell = AnyMatrix::Ell(EllMatrix::from_triples(&figure1_matrix()));
        let custom = convert_with_spec(&ell, &FormatSpec::stock(FormatId::Csc).unwrap()).unwrap();
        let reference = engine::to_csc(&EllMatrix::from_triples(&figure1_matrix()));
        assert_eq!(custom.vals, reference.values());
    }
}
