//! The specification-driven (dynamic) conversion path.
//!
//! The engine kernels in [`crate::engine`] are monomorphised for the built-in
//! formats. This module is the fully dynamic counterpart: it converts a
//! matrix into *any* format described by a [`FormatSpec`] — including
//! user-defined custom formats — by literally executing the recipe of
//! Figure 12 with level assemblers, the remapping evaluator, and the
//! attribute-query evaluator. It is slower than the engine (that gap is
//! measured by the `ablations` benchmark) but places no restriction on the
//! level composition.

use attr_query::eval::evaluate_on_coords;
use attr_query::{AttrQuery, QueryResult};
use coord_remap::{BoundsEnv, EvalContext, Remapping};
use level_formats::{
    BandedLevel, CompressedLevel, DenseLevel, EdgeInsertion, HashedLevel, LevelAssembler,
    LevelKind, LevelProperties, PositionKind, SingletonLevel, SlicedLevel, SqueezedLevel,
};
use sparse_tensor::{DimBounds, Shape, Value};
use std::collections::HashMap;

use crate::convert::AnyMatrix;
use crate::error::ConvertError;
use crate::spec::FormatSpec;

/// The assembled data of one output level.
#[derive(Debug, Clone, PartialEq)]
pub enum LevelOutput {
    /// Dense level: nothing stored beyond the extent.
    Dense {
        /// Dimension extent.
        extent: usize,
    },
    /// Compressed level: `pos` and `crd` arrays.
    Compressed {
        /// Parent-to-children offsets.
        pos: Vec<usize>,
        /// Child coordinates.
        crd: Vec<i64>,
    },
    /// Singleton level: one coordinate per position.
    Singleton {
        /// Stored coordinates.
        crd: Vec<i64>,
    },
    /// Sliced level: the analysed slice count.
    Sliced {
        /// Number of slices `K`.
        slices: usize,
    },
    /// Squeezed level: the stored coordinate values.
    Squeezed {
        /// Stored coordinate values (e.g. DIA diagonal offsets).
        perm: Vec<i64>,
    },
    /// Banded level: run offsets and first stored coordinate per parent.
    Banded {
        /// Run offsets.
        pos: Vec<usize>,
        /// First stored coordinate per parent.
        first: Vec<usize>,
    },
    /// Hashed level: interned `(parent position, coordinate)` pairs.
    Hashed {
        /// Interned coordinates in insertion order.
        coords: Vec<(usize, i64)>,
    },
}

/// A tensor assembled from a [`FormatSpec`] by the dynamic converter.
///
/// A `CustomTensor` is a full citizen of the conversion stack: it can be
/// read *back* ([`CustomTensor::to_triples`] walks the assembled levels and
/// inverts the remapping), which is what makes user-defined formats valid
/// conversion **sources** as well as targets.
#[derive(Debug, Clone, PartialEq)]
pub struct CustomTensor {
    /// The format specification the tensor was assembled for.
    pub spec: FormatSpec,
    /// The assembled level data, outermost first.
    pub levels: Vec<LevelOutput>,
    /// The value array, indexed by the last level's positions.
    pub vals: Vec<Value>,
    /// The canonical (source) tensor shape.
    pub source_shape: Shape,
    /// Static bounds of each remapped dimension (the bounds assembly used;
    /// needed to read dense levels back, whose lower bound — e.g. DIA's
    /// negative offsets — is not recoverable from the extent alone).
    pub bounds: Vec<DimBounds>,
    /// Number of canonical nonzeros stored (padding excluded).
    pub nnz: usize,
}

impl CustomTensor {
    /// The canonical (source) tensor shape.
    pub fn shape(&self) -> &Shape {
        &self.source_shape
    }

    /// The tensor's canonical order.
    pub fn order(&self) -> usize {
        self.source_shape.order()
    }

    /// Number of canonical nonzeros stored (padding excluded).
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Reads the tensor back into canonical triples by walking the
    /// assembled levels (enumerating every storage coordinate tuple) and
    /// inverting the spec's coordinate remapping. Positions holding padding
    /// zeros are skipped for compositions with padded levels (dense, sliced,
    /// banded), mirroring the stock structured sources.
    ///
    /// # Errors
    ///
    /// Returns [`ConvertError::UnsupportedSpec`] when the remapping is not
    /// invertible (see [`coord_remap::Remapping::inverter`]); such formats
    /// are conversion targets only.
    pub fn to_triples(&self) -> Result<sparse_tensor::SparseTriples, ConvertError> {
        let inverter =
            self.spec
                .remapping
                .inverter()
                .ok_or_else(|| ConvertError::UnsupportedSpec {
                    reason: format!(
                        "format {}: the remapping {} is not invertible, so the \
                     assembled tensor cannot be read back as a conversion \
                     source",
                        self.spec.name, self.spec.remapping
                    ),
                })?;
        // Padded level kinds store explicit zeros; every other composition
        // stores nonzeros only, so a stored zero is a genuine value.
        let skip_zeros = self.levels.iter().any(|l| {
            matches!(
                l,
                LevelOutput::Dense { .. } | LevelOutput::Sliced { .. } | LevelOutput::Banded { .. }
            )
        });
        // Group each hashed level's interned pairs by parent once, so the
        // walk is linear instead of rescanning the whole pair list per
        // parent position.
        let hashed_groups: HashedGroups = self
            .levels
            .iter()
            .map(|l| match l {
                LevelOutput::Hashed { coords } => {
                    let mut groups: HashMap<usize, Vec<(usize, i64)>> = HashMap::new();
                    for (idx, &(parent, coord)) in coords.iter().enumerate() {
                        groups.entry(parent).or_default().push((idx, coord));
                    }
                    Some(groups)
                }
                _ => None,
            })
            .collect();
        let mut out =
            sparse_tensor::SparseTriples::with_capacity(self.source_shape.clone(), self.nnz);
        let mut prefix: Vec<i64> = Vec::with_capacity(self.levels.len());
        self.walk_level(0, 0, &hashed_groups, &mut prefix, &mut |pos, coords| {
            let value = self.vals.get(pos).copied().unwrap_or(0.0);
            if skip_zeros && value == 0.0 {
                return Ok(());
            }
            out.push(inverter.apply(coords), value)?;
            Ok(())
        })?;
        Ok(out)
    }

    /// Visits every storage coordinate tuple under `parent_pos` at level
    /// `k`, depth first. `hashed_groups[k]` holds level `k`'s interned pairs
    /// grouped by parent when the level is hashed.
    fn walk_level(
        &self,
        k: usize,
        parent_pos: usize,
        hashed_groups: &HashedGroups,
        prefix: &mut Vec<i64>,
        visit: &mut LevelVisitor<'_>,
    ) -> Result<(), ConvertError> {
        let children: Vec<(usize, i64)> = match &self.levels[k] {
            LevelOutput::Dense { extent } => (0..*extent)
                .map(|off| (parent_pos * extent + off, self.bounds[k].lower + off as i64))
                .collect(),
            LevelOutput::Sliced { slices } => (0..*slices)
                .map(|off| (parent_pos * slices + off, off as i64))
                .collect(),
            LevelOutput::Compressed { pos, crd } => (pos[parent_pos]..pos[parent_pos + 1])
                .map(|p| (p, crd[p]))
                .collect(),
            LevelOutput::Singleton { crd } => vec![(parent_pos, crd[parent_pos])],
            LevelOutput::Squeezed { perm } => perm
                .iter()
                .enumerate()
                .map(|(idx, &c)| (parent_pos * perm.len() + idx, c))
                .collect(),
            LevelOutput::Banded { pos, first } => (0..pos[parent_pos + 1] - pos[parent_pos])
                .map(|off| (pos[parent_pos] + off, (first[parent_pos] + off) as i64))
                .collect(),
            LevelOutput::Hashed { .. } => hashed_groups[k]
                .as_ref()
                .expect("hashed levels are grouped before the walk")
                .get(&parent_pos)
                .cloned()
                .unwrap_or_default(),
        };
        let last = k + 1 == self.levels.len();
        for (pos, coord) in children {
            prefix.push(coord);
            if last {
                visit(pos, prefix)?;
            } else {
                self.walk_level(k + 1, pos, hashed_groups, prefix, visit)?;
            }
            prefix.pop();
        }
        Ok(())
    }
}

/// Callback of [`CustomTensor::walk_level`]: receives each leaf position and
/// the full storage coordinate tuple leading to it.
type LevelVisitor<'a> = dyn FnMut(usize, &[i64]) -> Result<(), ConvertError> + 'a;

/// Per-level hashed-entry grouping used by [`CustomTensor::walk_level`]:
/// `Some` for hashed levels, mapping each parent position to its interned
/// `(position, coordinate)` pairs.
type HashedGroups = Vec<Option<HashMap<usize, Vec<(usize, i64)>>>>;

/// A level assembler of any kind, dispatched by enumeration (so that the
/// assembled data can be recovered without downcasting).
#[derive(Debug, Clone)]
pub enum AnyLevel {
    /// Dense level assembler.
    Dense(DenseLevel),
    /// Compressed level assembler (unique or non-unique).
    Compressed(CompressedLevel),
    /// Singleton level assembler.
    Singleton(SingletonLevel),
    /// Sliced level assembler.
    Sliced(SlicedLevel),
    /// Squeezed level assembler.
    Squeezed(SqueezedLevel),
    /// Banded level assembler.
    Banded(BandedLevel),
    /// Hashed level assembler.
    Hashed(HashedLevel),
}

macro_rules! each_level {
    ($self:expr, $l:ident => $e:expr) => {
        match $self {
            AnyLevel::Dense($l) => $e,
            AnyLevel::Compressed($l) => $e,
            AnyLevel::Singleton($l) => $e,
            AnyLevel::Sliced($l) => $e,
            AnyLevel::Squeezed($l) => $e,
            AnyLevel::Banded($l) => $e,
            AnyLevel::Hashed($l) => $e,
        }
    };
}

impl LevelAssembler for AnyLevel {
    fn kind(&self) -> LevelKind {
        each_level!(self, l => l.kind())
    }

    fn properties(&self) -> LevelProperties {
        each_level!(self, l => l.properties())
    }

    fn required_query(&self, dims: &[String], level: usize) -> Option<AttrQuery> {
        each_level!(self, l => l.required_query(dims, level))
    }

    fn edge_insertion(&self) -> EdgeInsertion {
        each_level!(self, l => l.edge_insertion())
    }

    fn position_kind(&self) -> PositionKind {
        each_level!(self, l => l.position_kind())
    }

    fn size(&self, parent_size: usize) -> usize {
        each_level!(self, l => l.size(parent_size))
    }

    fn init_edges(&mut self, parent_size: usize, sequenced: bool, q: Option<&QueryResult>) {
        each_level!(self, l => l.init_edges(parent_size, sequenced, q))
    }

    fn insert_edges(
        &mut self,
        parent_pos: usize,
        parent_coords: &[i64],
        sequenced: bool,
        q: Option<&QueryResult>,
    ) {
        each_level!(self, l => l.insert_edges(parent_pos, parent_coords, sequenced, q))
    }

    fn finalize_edges(&mut self, parent_size: usize, sequenced: bool) {
        each_level!(self, l => l.finalize_edges(parent_size, sequenced))
    }

    fn init_coords(&mut self, parent_size: usize, q: Option<&QueryResult>) {
        each_level!(self, l => l.init_coords(parent_size, q))
    }

    fn init_pos(&mut self, parent_size: usize) {
        each_level!(self, l => l.init_pos(parent_size))
    }

    fn position(&mut self, parent_pos: usize, coords: &[i64]) -> usize {
        each_level!(self, l => l.position(parent_pos, coords))
    }

    fn insert_coord(&mut self, parent_pos: usize, pos: usize, coords: &[i64]) {
        each_level!(self, l => l.insert_coord(parent_pos, pos, coords))
    }

    fn finalize_pos(&mut self, parent_size: usize) {
        each_level!(self, l => l.finalize_pos(parent_size))
    }
}

impl AnyLevel {
    /// Extracts the assembled data.
    pub fn into_output(self, bounds: DimBounds) -> LevelOutput {
        match self {
            AnyLevel::Dense(_) => LevelOutput::Dense {
                extent: bounds.extent(),
            },
            AnyLevel::Compressed(level) => {
                let (pos, crd) = level.into_arrays();
                LevelOutput::Compressed { pos, crd }
            }
            AnyLevel::Singleton(level) => LevelOutput::Singleton {
                crd: level.into_crd(),
            },
            AnyLevel::Sliced(level) => LevelOutput::Sliced {
                slices: level.slice_count(),
            },
            AnyLevel::Squeezed(level) => LevelOutput::Squeezed {
                perm: level.into_perm(),
            },
            AnyLevel::Banded(level) => {
                let (pos, first) = level.into_arrays();
                LevelOutput::Banded { pos, first }
            }
            AnyLevel::Hashed(level) => LevelOutput::Hashed {
                coords: level.coords().to_vec(),
            },
        }
    }
}

/// Builds a level assembler for a level kind over the given coordinate
/// bounds.
pub fn make_assembler(kind: LevelKind, bounds: DimBounds) -> AnyLevel {
    match kind {
        LevelKind::Dense => {
            AnyLevel::Dense(DenseLevel::with_lower_bound(bounds.extent(), bounds.lower))
        }
        LevelKind::Compressed => AnyLevel::Compressed(CompressedLevel::new()),
        LevelKind::CompressedNonUnique => AnyLevel::Compressed(CompressedLevel::non_unique()),
        LevelKind::Singleton => AnyLevel::Singleton(SingletonLevel::new()),
        LevelKind::Sliced => AnyLevel::Sliced(SlicedLevel::new()),
        LevelKind::Squeezed => AnyLevel::Squeezed(SqueezedLevel::new(bounds.lower, bounds.upper)),
        LevelKind::Banded => AnyLevel::Banded(BandedLevel::new()),
        LevelKind::Hashed => AnyLevel::Hashed(HashedLevel::new()),
    }
}

/// Converts a tensor into the format described by `spec`.
///
/// # Errors
///
/// Returns an error when the source's order does not match the spec's
/// remapping, the remapping or a query fails to evaluate, or the spec's
/// level composition requires edge insertion under a non-full ancestor that
/// is not an ordered chain of dense/compressed levels (the one grouping the
/// dynamic driver can reconstruct by sorting, as in CSF).
pub fn convert_with_spec(src: &AnyMatrix, spec: &FormatSpec) -> Result<CustomTensor, ConvertError> {
    spec.validate()?;
    let triples = src.try_to_triples()?;
    let shape = src.shape();
    if shape.order() != spec.remapping.source_order() {
        return Err(ConvertError::Unsupported(format!(
            "format {} remaps order-{} tensors, got an order-{} source",
            spec.name,
            spec.remapping.source_order(),
            shape.order()
        )));
    }

    // Phase 1: coordinate remapping (Section 4).
    let remapping: &Remapping = &spec.remapping;
    let mut ctx = EvalContext::new(remapping);
    let mut remapped = ctx.apply_all(&triples)?;

    // A banded level stores one contiguous run per parent fiber, bounded
    // above by the parent dimension's coordinate (the skyline profile).
    // Nonzeros above that bound fall outside every run, so they are dropped
    // here — exactly what the engine's skyline kernel does when it converts
    // the lower triangle of its source.
    for (k, kind) in spec.levels.iter().enumerate() {
        if matches!(kind, LevelKind::Banded) && k > 0 {
            remapped.triples.retain(|(c, _)| c[k] <= c[k - 1]);
        }
    }

    // Compressed levels nested under non-full ancestors (CSF's fiber chains)
    // need the input grouped by coordinate prefix; a stable lexicographic
    // sort of the remapped nonzeros establishes exactly the grouping the
    // paper's sort-then-pack COO→CSF recipe uses. Formats whose chains are
    // full-rooted (CSR, DIA, ...) keep the source iteration order.
    if needs_prefix_grouping(&spec.levels) {
        remapped.triples.sort_by(|a, b| a.0.cmp(&b.0));
        // The dynamic driver sizes compressed levels from count-*distinct*
        // queries, so duplicate coordinates (which the monomorphised engine
        // stores as adjacent innermost entries) cannot be assembled here;
        // reject them instead of overrunning the coordinate arrays. The sort
        // above makes the check a free adjacent comparison.
        if remapped.triples.windows(2).any(|w| w[0].0 == w[1].0) {
            return Err(ConvertError::Unsupported(format!(
                "the dynamic converter requires duplicate-free coordinates for {} \
                 targets; sum duplicates first (the engine path stores them verbatim)",
                spec.name
            )));
        }
    }

    // Static bounds of each remapped dimension, used to size dense, squeezed,
    // and counter-derived dimensions.
    let env = BoundsEnv::for_remapping(remapping, shape.dims()).with_nnz(triples.nnz());
    let bounds = coord_remap::infer_bounds(remapping, &env)?;

    // Phase 2: analysis (Section 5) — evaluate each level's attribute query
    // over the remapped coordinates.
    let coords: Vec<Vec<i64>> = remapped.triples.iter().map(|(c, _)| c.clone()).collect();
    let mut queries: Vec<Option<QueryResult>> = Vec::with_capacity(spec.levels.len());
    let mut assemblers: Vec<AnyLevel> = Vec::with_capacity(spec.levels.len());
    for (k, kind) in spec.levels.iter().enumerate() {
        let assembler = make_assembler(*kind, bounds[k]);
        match assembler.required_query(&spec.dim_names, k) {
            Some(query) => {
                let result = evaluate_on_coords(
                    &query,
                    &spec.dim_names,
                    &bounds,
                    coords.iter().map(|c| c.as_slice()),
                )?;
                queries.push(Some(result));
            }
            None => queries.push(None),
        }
        assemblers.push(assembler);
    }

    // Phase 3: assembly (Section 6, Figure 12), level by level from the top.
    let mut parent_sizes = Vec::with_capacity(spec.levels.len());
    let mut parent_size = 1usize;
    for k in 0..assemblers.len() {
        parent_sizes.push(parent_size);
        let q = queries[k].as_ref();
        let (ancestors, rest) = assemblers.split_at_mut(k);
        let assembler = &mut rest[0];
        if assembler.edge_insertion() == EdgeInsertion::SequencedOrUnsequenced {
            // Enumerate parent positions with their coordinate tuples. When
            // every ancestor level is full (dense-like), positions are the
            // cartesian product of ancestor coordinates. Otherwise the
            // ancestors must be full levels followed by compressed levels:
            // compressed positions are contiguous ranks of stored prefixes
            // in sorted order, so parent position `p` is exactly the `p`-th
            // distinct coordinate prefix in lexicographic order. (A full
            // level *below* a compressed one breaks that correspondence —
            // its positions are gappy arithmetic, not ranks — so validate
            // rejects such chains.)
            let ancestors_full = spec.levels[..k]
                .iter()
                .all(|a| matches!(a, LevelKind::Dense | LevelKind::Sliced));
            let ancestors_chainable = {
                let mut seen_compressed = false;
                spec.levels[..k].iter().all(|a| match a {
                    LevelKind::Compressed => {
                        seen_compressed = true;
                        true
                    }
                    LevelKind::Dense | LevelKind::Sliced => !seen_compressed,
                    _ => false,
                })
            };
            if k > 0 && !ancestors_full && !ancestors_chainable {
                // Unreachable after `spec.validate()`; kept as
                // defense-in-depth for specs constructed around it.
                return Err(ConvertError::UnsupportedSpec {
                    reason: format!(
                        "level {k} ({}) needs edge insertion under an \
                         ancestor chain that is not full levels followed \
                         by compressed levels",
                        spec.levels[k]
                    ),
                });
            }
            let parents = if ancestors_full {
                // Enumerate over each ancestor's *assembled* fanout, not the
                // static bounds: a sliced level is dense over its
                // data-dependent slice count `K` (0 for an empty input, and
                // generally at most the dimension extent), and its positions
                // are `parent * K + coord` with raw 0-based coordinates.
                let eff_bounds: Vec<DimBounds> = ancestors
                    .iter()
                    .zip(&bounds[..k])
                    .map(|(a, b)| match a {
                        AnyLevel::Sliced(l) => DimBounds::new(0, l.slice_count() as i64),
                        _ => *b,
                    })
                    .collect();
                enumerate_full_positions(&eff_bounds)
            } else {
                enumerate_prefix_positions(&remapped.triples, k)
            };
            debug_assert!(
                ancestors_full || parents.len() == parent_size,
                "distinct prefixes must match the assembled parent size"
            );
            assembler.init_edges(parent_size, true, q);
            for (pos, parent_coords) in parents {
                assembler.insert_edges(pos, &parent_coords, true, q);
            }
            assembler.finalize_edges(parent_size, true);
        }
        assembler.init_coords(parent_size, q);
        assembler.init_pos(parent_size);
        parent_size = assembler.size(parent_size);
    }
    let total = parent_size;

    // Coordinate insertion: one pass over the remapped nonzeros, walking the
    // level chain to compute each nonzero's position. Levels that yield
    // positions but must stay duplicate-free (e.g. an intermediate block
    // level) are deduplicated on the fly, as Section 6.2 describes.
    let mut vals = vec![0.0; total];
    let mut dedup: Vec<HashMap<(usize, i64), usize>> =
        (0..spec.levels.len()).map(|_| HashMap::new()).collect();
    for (coord, value) in &remapped.triples {
        let mut pos = 0usize;
        for (k, assembler) in assemblers.iter_mut().enumerate() {
            let prefix = &coord[..=k];
            let is_last = k + 1 == spec.levels.len();
            let needs_dedup = assembler.position_kind() == PositionKind::Yield
                && !is_last
                && assembler.properties().unique;
            let next = if needs_dedup {
                let key = (pos, coord[k]);
                if let Some(&existing) = dedup[k].get(&key) {
                    existing
                } else {
                    let fresh = assembler.position(pos, prefix);
                    assembler.insert_coord(pos, fresh, prefix);
                    dedup[k].insert(key, fresh);
                    fresh
                }
            } else {
                let fresh = assembler.position(pos, prefix);
                assembler.insert_coord(pos, fresh, prefix);
                fresh
            };
            pos = next;
        }
        // Levels whose size is only known as coordinates are interned (e.g.
        // hashed levels) grow the value array on demand.
        if pos >= vals.len() {
            vals.resize(pos + 1, 0.0);
        }
        vals[pos] = *value;
    }
    for (k, assembler) in assemblers.iter_mut().enumerate() {
        assembler.finalize_pos(parent_sizes[k]);
    }

    // Extract per-level outputs.
    let levels: Vec<LevelOutput> = assemblers
        .into_iter()
        .enumerate()
        .map(|(k, assembler)| assembler.into_output(bounds[k]))
        .collect();
    Ok(CustomTensor {
        spec: spec.clone(),
        levels,
        vals,
        source_shape: shape,
        bounds,
        nnz: remapped.triples.len(),
    })
}

/// True when some compressed-like level sits under a non-full ancestor, so
/// the input must be grouped (sorted) by coordinate prefix before assembly.
///
/// Public because the route planner uses it to classify custom targets: a
/// spec that forces the grouping sort canonicalises its input, so any
/// admissible intermediate is safe; one that does not stores the source
/// iteration order verbatim.
pub fn needs_prefix_grouping(levels: &[LevelKind]) -> bool {
    levels.iter().enumerate().any(|(k, kind)| {
        k > 0
            && matches!(
                kind,
                LevelKind::Compressed | LevelKind::CompressedNonUnique | LevelKind::Banded
            )
            && !levels[..k]
                .iter()
                .all(|a| matches!(a, LevelKind::Dense | LevelKind::Sliced))
    })
}

/// Enumerates the distinct coordinate prefixes of length `k` of
/// lexicographically sorted nonzeros, paired with their positions (ranks).
fn enumerate_prefix_positions(sorted: &[(Vec<i64>, Value)], k: usize) -> Vec<(usize, Vec<i64>)> {
    let mut out: Vec<(usize, Vec<i64>)> = Vec::new();
    for (coord, _) in sorted {
        let prefix = &coord[..k];
        if out.last().is_none_or(|(_, p)| p.as_slice() != prefix) {
            out.push((out.len(), prefix.to_vec()));
        }
    }
    out
}

/// Enumerates the positions (and coordinate tuples) of a chain of full
/// levels, in position order.
fn enumerate_full_positions(bounds: &[DimBounds]) -> Vec<(usize, Vec<i64>)> {
    let mut out = vec![(0usize, Vec::new())];
    for b in bounds {
        let mut next = Vec::with_capacity(out.len() * b.extent());
        for (pos, coords) in &out {
            for (offset, c) in (b.lower..b.upper).enumerate() {
                let mut extended = coords.clone();
                extended.push(c);
                next.push((pos * b.extent() + offset, extended));
            }
        }
        out = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::{AnyMatrix, FormatId};
    use crate::engine;
    use sparse_formats::{CooMatrix, CsrMatrix, DiaMatrix, EllMatrix};
    use sparse_tensor::example::figure1_matrix;
    use sparse_tensor::SparseTriples;

    fn coo_src() -> AnyMatrix {
        AnyMatrix::Coo(CooMatrix::from_triples(&figure1_matrix()))
    }

    #[test]
    fn dynamic_csr_matches_engine_csr() {
        let spec = FormatSpec::stock(FormatId::Csr).unwrap();
        let custom = convert_with_spec(&coo_src(), &spec).unwrap();
        let reference = engine::to_csr(&CooMatrix::from_triples(&figure1_matrix()));
        match &custom.levels[1] {
            LevelOutput::Compressed { pos, crd } => {
                assert_eq!(pos, reference.pos());
                let crd_usize: Vec<usize> = crd.iter().map(|&c| c as usize).collect();
                assert_eq!(crd_usize, reference.crd());
            }
            other => panic!("unexpected level output {other:?}"),
        }
        assert_eq!(custom.vals, reference.values());
    }

    #[test]
    fn dynamic_dia_matches_engine_dia() {
        let spec = FormatSpec::stock(FormatId::Dia).unwrap();
        let custom = convert_with_spec(&coo_src(), &spec).unwrap();
        let reference = engine::to_dia(&CooMatrix::from_triples(&figure1_matrix())).unwrap();
        match &custom.levels[0] {
            LevelOutput::Squeezed { perm } => assert_eq!(perm, reference.offsets()),
            other => panic!("unexpected level output {other:?}"),
        }
        assert_eq!(custom.vals, reference.values());
    }

    #[test]
    fn dynamic_ell_matches_engine_ell() {
        let spec = FormatSpec::stock(FormatId::Ell).unwrap();
        let custom = convert_with_spec(&coo_src(), &spec).unwrap();
        let reference = engine::to_ell(&CooMatrix::from_triples(&figure1_matrix()));
        match &custom.levels[0] {
            LevelOutput::Sliced { slices } => assert_eq!(*slices, reference.slices()),
            other => panic!("unexpected level output {other:?}"),
        }
        match &custom.levels[2] {
            LevelOutput::Singleton { crd } => {
                let crd_usize: Vec<usize> = crd.iter().map(|&c| c as usize).collect();
                assert_eq!(crd_usize, reference.crd());
            }
            other => panic!("unexpected level output {other:?}"),
        }
        assert_eq!(custom.vals, reference.values());
    }

    #[test]
    fn dynamic_coo_target_keeps_duplicless_row_entries() {
        let spec = FormatSpec::stock(FormatId::Coo).unwrap();
        let custom = convert_with_spec(&coo_src(), &spec).unwrap();
        match (&custom.levels[0], &custom.levels[1]) {
            (LevelOutput::Compressed { pos, crd }, LevelOutput::Singleton { crd: cols }) => {
                assert_eq!(pos, &[0, 9]);
                assert_eq!(crd, &[0, 0, 1, 1, 2, 2, 3, 3, 3]);
                assert_eq!(cols, &[0, 1, 1, 2, 0, 2, 1, 3, 4]);
            }
            other => panic!("unexpected level outputs {other:?}"),
        }
        assert_eq!(custom.vals, &[5.0, 1.0, 7.0, 3.0, 8.0, 2.0, 4.0, 9.0, 6.0]);
    }

    #[test]
    fn dynamic_custom_blocked_format_assembles() {
        // A custom blocked format built from the spec language alone: blocks
        // interned in a hash level, block contents dense.
        let spec = FormatSpec::new(
            "BLOCK-HASH",
            coord_remap::stock::bcsr_with_blocks(2, 2),
            vec!["bi", "bj", "li", "lj"],
            vec![
                LevelKind::Dense,
                LevelKind::Hashed,
                LevelKind::Dense,
                LevelKind::Dense,
            ],
        );
        let custom = convert_with_spec(&coo_src(), &spec).unwrap();
        match &custom.levels[1] {
            LevelOutput::Hashed { coords } => assert!(!coords.is_empty()),
            other => panic!("unexpected level output {other:?}"),
        }
        assert_eq!(custom.vals.iter().filter(|&&v| v != 0.0).count(), 9);
    }

    #[test]
    fn dynamic_skyline_assembles_lower_triangles() {
        let lower = SparseTriples::from_matrix_entries(
            4,
            4,
            vec![
                (0, 0, 1.0),
                (1, 1, 2.0),
                (2, 0, 3.0),
                (2, 2, 4.0),
                (3, 2, 5.0),
                (3, 3, 6.0),
            ],
        )
        .unwrap();
        let src = AnyMatrix::Csr(CsrMatrix::from_triples(&lower));
        let custom =
            convert_with_spec(&src, &FormatSpec::stock(FormatId::Skyline).unwrap()).unwrap();
        match &custom.levels[1] {
            LevelOutput::Banded { pos, first } => {
                assert_eq!(pos, &[0, 1, 2, 5, 7]);
                assert_eq!(first, &[0, 1, 0, 2]);
            }
            other => panic!("unexpected level output {other:?}"),
        }
        assert_eq!(custom.vals, &[1.0, 2.0, 3.0, 0.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn dynamic_csf_matches_engine_csf() {
        // The COO3 source is deliberately unsorted; the dynamic driver must
        // re-establish the fiber grouping by sorting, exactly like the
        // engine's sort-then-pack kernel.
        let t = sparse_tensor::example::example3_tensor();
        let src = AnyMatrix::Coo3(sparse_formats::CooTensor::from_triples(&t));
        let spec = FormatSpec::stock(FormatId::Csf).unwrap();
        let custom = convert_with_spec(&src, &spec).unwrap();
        let reference = engine::to_csf(&sparse_formats::CooTensor::from_triples(&t));
        // Level l's `pos` array groups level l's coordinates under their
        // *parents*: level 0 has the single root parent, level l ≥ 1 maps to
        // the CSF container's pos(l - 1).
        for (level, (crd_ref, pos_ref)) in [
            (reference.crd(0), vec![0, reference.num_fibers(0)]),
            (reference.crd(1), reference.pos(0).to_vec()),
            (reference.crd(2), reference.pos(1).to_vec()),
        ]
        .into_iter()
        .enumerate()
        {
            match &custom.levels[level] {
                LevelOutput::Compressed { pos, crd } => {
                    let crd_usize: Vec<usize> = crd.iter().map(|&c| c as usize).collect();
                    assert_eq!(crd_usize, crd_ref, "crd at level {level}");
                    assert_eq!(pos, &pos_ref, "pos at level {level}");
                }
                other => panic!("unexpected level output {other:?}"),
            }
        }
        assert_eq!(custom.vals, reference.values());
        assert_eq!(custom.source_shape, *t.shape());
    }

    #[test]
    fn dynamic_coo3_preserves_source_order() {
        let t = sparse_tensor::example::example3_tensor();
        let src = AnyMatrix::Coo3(sparse_formats::CooTensor::from_triples(&t));
        let spec = FormatSpec::stock(FormatId::Coo3).unwrap();
        let custom = convert_with_spec(&src, &spec).unwrap();
        // COO3 has no compressed level under a non-full ancestor, so the
        // source order survives: the values come out exactly as stored.
        let expected: Vec<f64> = t.iter().map(|tr| tr.value).collect();
        assert_eq!(custom.vals, expected);
    }

    #[test]
    fn duplicate_coordinates_are_rejected_not_panicking() {
        // The engine stores duplicate components verbatim (adjacent innermost
        // entries); the dynamic driver sizes compressed levels from
        // count-distinct queries and must reject duplicates with an error.
        let mut coo = sparse_formats::CooTensor::new(sparse_tensor::Shape::tensor3(2, 2, 2));
        coo.push(&[1, 1, 0], 2.0);
        coo.push(&[1, 1, 0], 3.0);
        let spec = FormatSpec::stock(FormatId::Csf).unwrap();
        assert!(matches!(
            convert_with_spec(&AnyMatrix::Coo3(coo), &spec),
            Err(ConvertError::Unsupported(_))
        ));
    }

    #[test]
    fn order_mismatches_are_rejected() {
        let spec = FormatSpec::stock(FormatId::Csf).unwrap();
        assert!(matches!(
            convert_with_spec(&coo_src(), &spec),
            Err(ConvertError::Unsupported(_))
        ));
        let t = sparse_tensor::example::example3_tensor();
        let src = AnyMatrix::Coo3(sparse_formats::CooTensor::from_triples(&t));
        assert!(matches!(
            convert_with_spec(&src, &FormatSpec::stock(FormatId::Csr).unwrap()),
            Err(ConvertError::Unsupported(_))
        ));
    }

    #[test]
    fn dynamic_path_accepts_structured_sources() {
        let dia = AnyMatrix::Dia(DiaMatrix::from_triples(&figure1_matrix()));
        let spec = FormatSpec::stock(FormatId::Csr).unwrap();
        let custom = convert_with_spec(&dia, &spec).unwrap();
        let reference = engine::to_csr(&DiaMatrix::from_triples(&figure1_matrix()));
        assert_eq!(custom.vals, reference.values());
        let ell = AnyMatrix::Ell(EllMatrix::from_triples(&figure1_matrix()));
        let custom = convert_with_spec(&ell, &FormatSpec::stock(FormatId::Csc).unwrap()).unwrap();
        let reference = engine::to_csc(&EllMatrix::from_triples(&figure1_matrix()));
        assert_eq!(custom.vals, reference.values());
    }
}
