//! The conversion-routine generator: the paper's primary contribution.
//!
//! `sparse-conv` combines the three per-format specification languages —
//! coordinate remappings (`coord-remap`), attribute queries (`attr-query`),
//! and the assembly abstract interface (`level-formats`) — into conversion
//! routines between arbitrary pairs of supported formats:
//!
//! * [`spec`] — [`FormatSpec`]s describing every supported format by its
//!   remapping, level composition, and required attribute queries (one spec
//!   per format, *not* per pair).
//! * [`plan`] — the conversion planner: given a source and target spec it
//!   decides phase fusion, sequenced vs. unsequenced edge insertion, and
//!   scalar vs. array counters (Sections 3, 4.2, 6.2).
//! * [`engine`] — monomorphised conversion kernels, the runtime analogue of
//!   the specialised C code taco emits (Figure 6); this is the path the
//!   benchmarks measure.
//! * [`codegen`] — lowers a conversion plan to executable [`conv_ir`]
//!   routines and C-like listings structurally comparable to Figure 6.
//! * [`generic`] — a fully dynamic converter driven by [`FormatSpec`]s and
//!   trait objects, used for user-defined custom formats.
//! * [`convert`](mod@convert) — the public entry points ([`convert`](convert::convert),
//!   [`AnyMatrix`], [`FormatId`]).
//!
//! # Quickstart
//!
//! ```
//! use sparse_conv::{convert::{convert, AnyMatrix, FormatId}};
//! use sparse_formats::CooMatrix;
//! use sparse_tensor::example::figure1_matrix;
//!
//! let coo = AnyMatrix::Coo(CooMatrix::from_triples(&figure1_matrix()));
//! let dia = convert(&coo, FormatId::Dia)?;
//! assert_eq!(dia.format(), FormatId::Dia);
//! assert!(dia.to_triples().same_values(&figure1_matrix()));
//! # Ok::<(), sparse_conv::ConvertError>(())
//! ```

#![warn(missing_docs)]

pub mod codegen;
pub mod convert;
pub mod engine;
pub mod error;
pub mod generic;
pub mod plan;
pub mod source;
pub mod spec;

pub use convert::{convert, AnyMatrix, AnyTensor, FormatId};
pub use error::ConvertError;
pub use plan::ConversionPlan;
pub use source::{MatrixAsTensor, SourceMatrix, SourceTensor};
pub use spec::FormatSpec;
