//! The conversion-routine generator: the paper's primary contribution.
//!
//! `sparse-conv` combines the three per-format specification languages —
//! coordinate remappings (`coord-remap`), attribute queries (`attr-query`),
//! and the assembly abstract interface (`level-formats`) — into conversion
//! routines between arbitrary pairs of supported formats:
//!
//! * [`spec`] — [`FormatSpec`]s describing every supported format by its
//!   remapping, level composition, and required attribute queries (one spec
//!   per format, *not* per pair).
//! * [`plan`] — the conversion planner: given a source and target spec it
//!   decides phase fusion, sequenced vs. unsequenced edge insertion, and
//!   scalar vs. array counters (Sections 3, 4.2, 6.2).
//! * [`engine`] — monomorphised conversion kernels, the runtime analogue of
//!   the specialised C code taco emits (Figure 6); this is the path the
//!   benchmarks measure.
//! * [`codegen`] — lowers a conversion plan to executable [`conv_ir`]
//!   routines and C-like listings structurally comparable to Figure 6.
//! * [`generic`] — a fully dynamic converter driven by [`FormatSpec`]s and
//!   trait objects, used for user-defined custom formats.
//! * [`format`](mod@format) — the spec-first public surface: [`Format`]
//!   handles interned in the [`FormatRegistry`], with [`Format::builder`]
//!   for user-defined formats.
//! * [`convert`](mod@convert) — the public entry points ([`convert`](convert::convert),
//!   [`AnyTensor`]).
//!
//! # Quickstart
//!
//! ```
//! use sparse_conv::prelude::*;
//! use sparse_formats::CooMatrix;
//! use sparse_tensor::example::figure1_matrix;
//!
//! let coo = AnyTensor::Coo(CooMatrix::from_triples(&figure1_matrix()));
//!
//! // Stock formats are registry presets with `Format` constructors...
//! let dia = convert(&coo, Format::dia())?;
//! assert_eq!(dia.format(), Format::dia());
//! assert!(dia.to_triples().same_values(&figure1_matrix()));
//!
//! // ...and user-defined formats, built from a spec alone, convert in both
//! // directions through exactly the same entry point.
//! let dcsr = Format::builder("DCSR-quickstart")
//!     .remap_str("(i,j) -> (i,j)")?
//!     .dims(["i", "j"])
//!     .levels([LevelKind::Compressed, LevelKind::Compressed])
//!     .build()?;
//! let packed = convert(&coo, &dcsr)?;
//! assert_eq!(packed.format(), dcsr);
//! let back = convert(&packed, Format::csr())?;
//! assert!(back.to_triples().same_values(&figure1_matrix()));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod codegen;
pub mod convert;
pub mod engine;
pub mod error;
pub mod format;
pub mod generic;
pub mod mode;
pub mod plan;
pub mod select;
pub mod source;
pub mod spec;

pub use convert::{convert, plan_for_formats, AnyMatrix, AnyTensor, FormatId};
pub use error::ConvertError;
pub use format::{Format, FormatBuilder, FormatRegistry, ParseFormatError};
pub use plan::ConversionPlan;
pub use select::{auto_select, TensorProfile};
pub use source::{MatrixAsTensor, SourceMatrix, SourceTensor};
pub use spec::FormatSpec;

/// One-stop import of the spec-first public surface.
///
/// ```
/// use sparse_conv::prelude::*;
/// ```
pub mod prelude {
    pub use crate::convert::{convert, plan_for, plan_for_formats, AnyMatrix, AnyTensor, FormatId};
    pub use crate::error::ConvertError;
    pub use crate::format::{Format, FormatBuilder, FormatRegistry};
    pub use crate::select::{auto_select, TensorProfile};
    pub use crate::spec::FormatSpec;
    // The vocabulary user-defined specs are composed from.
    pub use coord_remap::{parse_remapping, Remapping};
    pub use level_formats::LevelKind;
}
