//! Public conversion entry points.

use std::fmt;

use sparse_formats::{
    BcsrMatrix, CooMatrix, CscMatrix, CsrMatrix, DiaMatrix, DokMatrix, EllMatrix, JadMatrix,
    SkylineMatrix,
};
use sparse_tensor::SparseTriples;

use crate::engine;
use crate::error::ConvertError;
use crate::plan::ConversionPlan;
use crate::source::SourceMatrix;
use crate::spec::FormatSpec;

/// Identifies a supported storage format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FormatId {
    /// Coordinate format.
    Coo,
    /// Compressed sparse row.
    Csr,
    /// Compressed sparse column.
    Csc,
    /// Diagonal format.
    Dia,
    /// ELLPACK format.
    Ell,
    /// Blocked CSR with the given block shape.
    Bcsr {
        /// Rows per block.
        block_rows: usize,
        /// Columns per block.
        block_cols: usize,
    },
    /// Skyline (lower-triangle profile) format.
    Skyline,
    /// Jagged diagonal format.
    Jad,
    /// Dictionary of keys.
    Dok,
}

impl FormatId {
    /// True when the format's storage groups nonzeros by row and iterates
    /// rows in ascending order (the property [`SourceMatrix::rows_in_order`]
    /// reports for every stock container of this format). The planner uses
    /// it to choose scalar counters and sequenced edge insertion.
    pub fn iterates_rows_in_order(self) -> bool {
        matches!(self, FormatId::Csr | FormatId::Skyline)
    }

    /// True when per-row nonzero counts can be read off the format's
    /// structure (a row `pos` array) without touching nonzeros — the
    /// optimised `count` query of Section 5.2.
    pub fn counts_from_structure(self) -> bool {
        matches!(self, FormatId::Csr | FormatId::Skyline)
    }
}

impl fmt::Display for FormatId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatId::Coo => write!(f, "COO"),
            FormatId::Csr => write!(f, "CSR"),
            FormatId::Csc => write!(f, "CSC"),
            FormatId::Dia => write!(f, "DIA"),
            FormatId::Ell => write!(f, "ELL"),
            FormatId::Bcsr {
                block_rows,
                block_cols,
            } => {
                write!(f, "BCSR{block_rows}x{block_cols}")
            }
            FormatId::Skyline => write!(f, "SKY"),
            FormatId::Jad => write!(f, "JAD"),
            FormatId::Dok => write!(f, "DOK"),
        }
    }
}

/// Error returned when a format name does not parse as a [`FormatId`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFormatIdError(String);

impl fmt::Display for ParseFormatIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown format `{}` (expected COO, CSR, CSC, DIA, ELL, SKY, JAD, \
             DOK, or BCSR<rows>x<cols> such as BCSR2x2)",
            self.0
        )
    }
}

impl std::error::Error for ParseFormatIdError {}

impl std::str::FromStr for FormatId {
    type Err = ParseFormatIdError;

    /// Parses the names the `Display` impl emits (case-insensitive), so every
    /// variant round-trips through its `Display` form — including block
    /// shapes: `"BCSR2x3"` parses to `FormatId::Bcsr { block_rows: 2,
    /// block_cols: 3 }`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseFormatIdError(s.to_string());
        let upper = s.trim().to_ascii_uppercase();
        if let Some(blocks) = upper.strip_prefix("BCSR") {
            let (rows, cols) = blocks.split_once('X').ok_or_else(err)?;
            let block_rows: usize = rows.parse().map_err(|_| err())?;
            let block_cols: usize = cols.parse().map_err(|_| err())?;
            if block_rows == 0 || block_cols == 0 {
                return Err(err());
            }
            return Ok(FormatId::Bcsr {
                block_rows,
                block_cols,
            });
        }
        match upper.as_str() {
            "COO" => Ok(FormatId::Coo),
            "CSR" => Ok(FormatId::Csr),
            "CSC" => Ok(FormatId::Csc),
            "DIA" => Ok(FormatId::Dia),
            "ELL" => Ok(FormatId::Ell),
            "SKY" | "SKYLINE" => Ok(FormatId::Skyline),
            "JAD" => Ok(FormatId::Jad),
            "DOK" => Ok(FormatId::Dok),
            _ => Err(err()),
        }
    }
}

/// A matrix in any supported format.
#[derive(Debug, Clone, PartialEq)]
pub enum AnyMatrix {
    /// COO storage.
    Coo(CooMatrix),
    /// CSR storage.
    Csr(CsrMatrix),
    /// CSC storage.
    Csc(CscMatrix),
    /// DIA storage.
    Dia(DiaMatrix),
    /// ELL storage.
    Ell(EllMatrix),
    /// BCSR storage.
    Bcsr(BcsrMatrix),
    /// Skyline storage.
    Skyline(SkylineMatrix),
    /// JAD storage.
    Jad(JadMatrix),
    /// DOK storage.
    Dok(DokMatrix),
}

/// Applies a closure to the contained matrix as a [`SourceMatrix`].
macro_rules! with_source {
    ($matrix:expr, $binding:ident => $body:expr) => {
        match $matrix {
            AnyMatrix::Coo($binding) => $body,
            AnyMatrix::Csr($binding) => $body,
            AnyMatrix::Csc($binding) => $body,
            AnyMatrix::Dia($binding) => $body,
            AnyMatrix::Ell($binding) => $body,
            AnyMatrix::Bcsr($binding) => $body,
            AnyMatrix::Skyline($binding) => $body,
            AnyMatrix::Jad($binding) => $body,
            AnyMatrix::Dok($binding) => $body,
        }
    };
}

impl AnyMatrix {
    /// The format this matrix is stored in.
    pub fn format(&self) -> FormatId {
        match self {
            AnyMatrix::Coo(_) => FormatId::Coo,
            AnyMatrix::Csr(_) => FormatId::Csr,
            AnyMatrix::Csc(_) => FormatId::Csc,
            AnyMatrix::Dia(_) => FormatId::Dia,
            AnyMatrix::Ell(_) => FormatId::Ell,
            AnyMatrix::Bcsr(m) => {
                let (block_rows, block_cols) = m.block_shape();
                FormatId::Bcsr {
                    block_rows,
                    block_cols,
                }
            }
            AnyMatrix::Skyline(_) => FormatId::Skyline,
            AnyMatrix::Jad(_) => FormatId::Jad,
            AnyMatrix::Dok(_) => FormatId::Dok,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        with_source!(self, m => SourceMatrix::rows(m))
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        with_source!(self, m => SourceMatrix::cols(m))
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        with_source!(self, m => SourceMatrix::nnz(m))
    }

    /// Converts to canonical triples (padding skipped).
    pub fn to_triples(&self) -> SparseTriples {
        let mut t = SparseTriples::with_capacity(
            sparse_tensor::Shape::matrix(self.rows(), self.cols()),
            self.nnz(),
        );
        with_source!(self, m => m.for_each(|i, j, v| {
            t.push(vec![i as i64, j as i64], v).expect("source coordinates are in bounds");
        }));
        t
    }

    /// Builds a matrix in the given format from canonical triples (via the
    /// reference constructors; conversion benchmarks use [`convert`] instead).
    ///
    /// # Errors
    ///
    /// Returns an error when the format cannot represent the input.
    pub fn from_triples(t: &SparseTriples, format: FormatId) -> Result<Self, ConvertError> {
        let coo = CooMatrix::from_triples(t);
        convert(&AnyMatrix::Coo(coo), format)
    }
}

/// Converts a matrix to the requested target format using the generated
/// (engine) conversion path.
///
/// # Errors
///
/// Returns an error when the target cannot represent the input (e.g. skyline
/// targets require square matrices), or [`ConvertError::UnsupportedTarget`]
/// for formats without a coordinate-hierarchy specification (DOK is supported
/// only as a conversion source).
pub fn convert(src: &AnyMatrix, target: FormatId) -> Result<AnyMatrix, ConvertError> {
    Ok(match target {
        FormatId::Coo => AnyMatrix::Coo(with_source!(src, m => engine::to_coo(m))),
        FormatId::Csr => AnyMatrix::Csr(with_source!(src, m => engine::to_csr(m))),
        FormatId::Csc => AnyMatrix::Csc(with_source!(src, m => engine::to_csc(m))),
        FormatId::Dia => AnyMatrix::Dia(with_source!(src, m => engine::to_dia(m))),
        FormatId::Ell => AnyMatrix::Ell(with_source!(src, m => engine::to_ell(m))),
        FormatId::Bcsr {
            block_rows,
            block_cols,
        } => AnyMatrix::Bcsr(with_source!(src, m => engine::to_bcsr(m, block_rows, block_cols))),
        FormatId::Skyline => AnyMatrix::Skyline(with_source!(src, m => engine::to_skyline(m))?),
        FormatId::Jad => AnyMatrix::Jad(with_source!(src, m => engine::to_jad(m))),
        FormatId::Dok => return Err(ConvertError::UnsupportedTarget(target)),
    })
}

/// Builds the conversion plan that [`convert`] follows for the given source
/// matrix and target format (for inspection, documentation, and ablation).
///
/// # Errors
///
/// Returns an error for targets without a coordinate-hierarchy specification
/// (DOK).
pub fn plan_for(src: &AnyMatrix, target: FormatId) -> Result<ConversionPlan, ConvertError> {
    let rows_in_order = with_source!(src, m => m.rows_in_order());
    plan_for_pair_with_order(src.format(), target, rows_in_order)
}

/// Builds the conversion plan for a format *pair*, without a matrix instance:
/// the per-instance properties are taken from the format's storage invariants
/// (the same values every stock container reports). This is the planner
/// entry point conversion services cache on — the plan for a pair never
/// changes between calls, so it only needs to be built once.
///
/// # Errors
///
/// Returns an error for targets without a coordinate-hierarchy specification
/// (DOK).
pub fn plan_for_pair(source: FormatId, target: FormatId) -> Result<ConversionPlan, ConvertError> {
    plan_for_pair_with_order(source, target, source.iterates_rows_in_order())
}

fn plan_for_pair_with_order(
    source: FormatId,
    target: FormatId,
    rows_in_order: bool,
) -> Result<ConversionPlan, ConvertError> {
    if matches!(target, FormatId::Dok) {
        return Err(ConvertError::UnsupportedTarget(target));
    }
    let source_spec = match source {
        FormatId::Dok => FormatSpec::stock(FormatId::Coo)?,
        other => FormatSpec::stock(other)?,
    };
    let target_spec = FormatSpec::stock(target)?;
    Ok(ConversionPlan::new(
        &source_spec,
        &target_spec,
        rows_in_order,
        source.counts_from_structure(),
    ))
}

/// All format identifiers evaluated in Section 7 (the benchmark set).
pub fn evaluated_formats() -> Vec<FormatId> {
    vec![
        FormatId::Coo,
        FormatId::Csr,
        FormatId::Csc,
        FormatId::Dia,
        FormatId::Ell,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_tensor::example::figure1_matrix;

    fn all_targets() -> Vec<FormatId> {
        vec![
            FormatId::Coo,
            FormatId::Csr,
            FormatId::Csc,
            FormatId::Dia,
            FormatId::Ell,
            FormatId::Bcsr {
                block_rows: 2,
                block_cols: 2,
            },
            FormatId::Jad,
        ]
    }

    #[test]
    fn every_pair_of_evaluated_formats_roundtrips() {
        let t = figure1_matrix();
        // Every target format plus DOK (a valid *source* built directly).
        let mut sources: Vec<AnyMatrix> = all_targets()
            .into_iter()
            .map(|f| AnyMatrix::from_triples(&t, f).unwrap())
            .collect();
        sources.push(AnyMatrix::Dok(DokMatrix::from_triples(&t)));
        for src in &sources {
            for dst in all_targets() {
                let converted = convert(src, dst).unwrap();
                assert_eq!(converted.format(), dst);
                assert!(
                    converted.to_triples().same_values(&t),
                    "conversion {} -> {} lost values",
                    src.format(),
                    dst
                );
            }
        }
    }

    #[test]
    fn dok_target_is_rejected_without_aborting() {
        let t = figure1_matrix();
        let m = AnyMatrix::from_triples(&t, FormatId::Coo).unwrap();
        assert_eq!(
            convert(&m, FormatId::Dok),
            Err(ConvertError::UnsupportedTarget(FormatId::Dok))
        );
        assert!(AnyMatrix::from_triples(&t, FormatId::Dok).is_err());
    }

    #[test]
    fn format_ids_round_trip_through_display_and_from_str() {
        let mut ids = all_targets();
        ids.push(FormatId::Skyline);
        ids.push(FormatId::Dok);
        ids.push(FormatId::Bcsr {
            block_rows: 16,
            block_cols: 3,
        });
        for id in ids {
            let rendered = id.to_string();
            assert_eq!(rendered.parse::<FormatId>().unwrap(), id, "{rendered}");
            // CLI input is case-insensitive.
            assert_eq!(rendered.to_lowercase().parse::<FormatId>().unwrap(), id);
        }
        assert!("BCSRxx2".parse::<FormatId>().is_err());
        assert!("BCSR0x2".parse::<FormatId>().is_err());
        assert!("HICOO".parse::<FormatId>().is_err());
        assert!("".parse::<FormatId>().is_err());
        let msg = "HICOO".parse::<FormatId>().unwrap_err().to_string();
        assert!(msg.contains("HICOO"), "{msg}");
    }

    #[test]
    fn format_metadata_accessors() {
        let t = figure1_matrix();
        let m = AnyMatrix::from_triples(&t, FormatId::Csr).unwrap();
        assert_eq!(m.format(), FormatId::Csr);
        assert_eq!(m.rows(), 4);
        assert_eq!(m.cols(), 6);
        assert_eq!(m.nnz(), 9);
        assert_eq!(
            FormatId::Bcsr {
                block_rows: 2,
                block_cols: 3
            }
            .to_string(),
            "BCSR2x3"
        );
        assert_eq!(FormatId::Dia.to_string(), "DIA");
        assert_eq!(evaluated_formats().len(), 5);
    }

    #[test]
    fn skyline_target_requires_square_input() {
        let t = figure1_matrix();
        let m = AnyMatrix::from_triples(&t, FormatId::Coo).unwrap();
        assert!(matches!(
            convert(&m, FormatId::Skyline),
            Err(ConvertError::Unsupported(_))
        ));
    }

    #[test]
    fn plans_are_available_for_every_benchmarked_pair() {
        let t = figure1_matrix();
        let coo = AnyMatrix::from_triples(&t, FormatId::Coo).unwrap();
        let csr = AnyMatrix::from_triples(&t, FormatId::Csr).unwrap();
        let plan = plan_for(&coo, FormatId::Csr).unwrap();
        assert_eq!(plan.counters, crate::plan::CounterStrategy::NotNeeded);
        let plan = plan_for(&csr, FormatId::Ell).unwrap();
        assert_eq!(plan.counters, crate::plan::CounterStrategy::Scalar);
        let plan = plan_for(&coo, FormatId::Ell).unwrap();
        assert_eq!(plan.counters, crate::plan::CounterStrategy::Array);
        assert!(plan_for(&coo, FormatId::Dok).is_err());
    }

    #[test]
    fn instance_free_planning_agrees_with_instance_planning() {
        let t = figure1_matrix();
        for src in [FormatId::Coo, FormatId::Csr, FormatId::Csc] {
            let m = AnyMatrix::from_triples(&t, src).unwrap();
            for dst in all_targets() {
                assert_eq!(
                    plan_for_pair(src, dst).unwrap(),
                    plan_for(&m, dst).unwrap(),
                    "{src} -> {dst}"
                );
            }
        }
        assert_eq!(
            plan_for_pair(FormatId::Csr, FormatId::Dok),
            Err(ConvertError::UnsupportedTarget(FormatId::Dok))
        );
    }
}
