//! Public conversion entry points.

use std::fmt;

use sparse_formats::{
    BcsrMatrix, CooMatrix, CooTensor, CscMatrix, CsfTensor, CsrMatrix, DiaMatrix, DokMatrix,
    EllMatrix, JadMatrix, SkylineMatrix,
};
use sparse_tensor::{Shape, SparseTriples};

use crate::engine;
use crate::error::ConvertError;
use crate::format::Format;
use crate::generic::{self, CustomTensor};
use crate::plan::ConversionPlan;
use crate::source::{MatrixAsTensor, SourceMatrix};
use crate::spec::FormatSpec;

/// Identifies a *stock* storage format.
///
/// Transitional: `FormatId` predates the spec-first API and survives as a
/// thin set of identifiers over the stock [`FormatRegistry`](crate::format::FormatRegistry)
/// presets — every variant resolves to one registry entry
/// ([`Format::stock`]), and everywhere a [`Format`] is accepted a `FormatId`
/// still works (`impl From<FormatId> for Format`). New code should hold
/// [`Format`] handles, which also cover user-defined formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FormatId {
    /// Coordinate format.
    Coo,
    /// Compressed sparse row.
    Csr,
    /// Compressed sparse column.
    Csc,
    /// Diagonal format.
    Dia,
    /// ELLPACK format.
    Ell,
    /// Blocked CSR with the given block shape.
    Bcsr {
        /// Rows per block.
        block_rows: usize,
        /// Columns per block.
        block_cols: usize,
    },
    /// Skyline (lower-triangle profile) format.
    Skyline,
    /// Jagged diagonal format.
    Jad,
    /// Dictionary of keys.
    Dok,
    /// Order-3 coordinate format (rank-N [`CooTensor`] container).
    Coo3,
    /// Compressed sparse fiber (rank-N [`CsfTensor`] container; order 2 is
    /// DCSR).
    Csf,
}

impl FormatId {
    /// True when the format's storage groups nonzeros by row and iterates
    /// rows in ascending order (the property [`SourceMatrix::rows_in_order`]
    /// reports for every stock container of this format). The planner uses
    /// it to choose scalar counters and sequenced edge insertion.
    pub fn iterates_rows_in_order(self) -> bool {
        matches!(self, FormatId::Csr | FormatId::Skyline | FormatId::Csf)
    }

    /// True when per-row nonzero counts can be read off the format's
    /// structure (a row `pos` array) without touching nonzeros — the
    /// optimised `count` query of Section 5.2.
    pub fn counts_from_structure(self) -> bool {
        matches!(self, FormatId::Csr | FormatId::Skyline | FormatId::Csf)
    }

    /// Order of the format's *stock specification*: 3 for the tensor
    /// formats, 2 for every matrix format. Note that `Csf` *containers* are
    /// rank-N — converting a matrix to [`FormatId::Csf`] yields an order-2
    /// fiber tree (DCSR) — so rank checks against a concrete value must use
    /// [`AnyMatrix::order`], not this method.
    pub fn order(self) -> usize {
        match self {
            FormatId::Coo3 | FormatId::Csf => 3,
            _ => 2,
        }
    }
}

impl fmt::Display for FormatId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatId::Coo => write!(f, "COO"),
            FormatId::Csr => write!(f, "CSR"),
            FormatId::Csc => write!(f, "CSC"),
            FormatId::Dia => write!(f, "DIA"),
            FormatId::Ell => write!(f, "ELL"),
            FormatId::Bcsr {
                block_rows,
                block_cols,
            } => {
                write!(f, "BCSR{block_rows}x{block_cols}")
            }
            FormatId::Skyline => write!(f, "SKY"),
            FormatId::Jad => write!(f, "JAD"),
            FormatId::Dok => write!(f, "DOK"),
            FormatId::Coo3 => write!(f, "COO3"),
            FormatId::Csf => write!(f, "CSF"),
        }
    }
}

/// Error returned when a format name does not parse as a [`FormatId`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFormatIdError(String);

impl fmt::Display for ParseFormatIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown format `{}` (expected COO, CSR, CSC, DIA, ELL, SKY, JAD, \
             DOK, COO3, CSF, or BCSR<rows>x<cols> such as BCSR2x2)",
            self.0
        )
    }
}

impl std::error::Error for ParseFormatIdError {}

impl std::str::FromStr for FormatId {
    type Err = ParseFormatIdError;

    /// Parses the names the `Display` impl emits (case-insensitive), so every
    /// variant round-trips through its `Display` form — including block
    /// shapes: `"BCSR2x3"` parses to `FormatId::Bcsr { block_rows: 2,
    /// block_cols: 3 }`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseFormatIdError(s.to_string());
        let upper = s.trim().to_ascii_uppercase();
        if let Some(blocks) = upper.strip_prefix("BCSR") {
            let (rows, cols) = blocks.split_once('X').ok_or_else(err)?;
            let block_rows: usize = rows.parse().map_err(|_| err())?;
            let block_cols: usize = cols.parse().map_err(|_| err())?;
            if block_rows == 0 || block_cols == 0 {
                return Err(err());
            }
            return Ok(FormatId::Bcsr {
                block_rows,
                block_cols,
            });
        }
        match upper.as_str() {
            "COO3" => Ok(FormatId::Coo3),
            "CSF" => Ok(FormatId::Csf),
            "COO" => Ok(FormatId::Coo),
            "CSR" => Ok(FormatId::Csr),
            "CSC" => Ok(FormatId::Csc),
            "DIA" => Ok(FormatId::Dia),
            "ELL" => Ok(FormatId::Ell),
            "SKY" | "SKYLINE" => Ok(FormatId::Skyline),
            "JAD" => Ok(FormatId::Jad),
            "DOK" => Ok(FormatId::Dok),
            _ => Err(err()),
        }
    }
}

/// A tensor in any supported format — the unified value type of the public
/// API. Matrix formats hold order-2 containers; the `Coo3` and `Csf`
/// variants hold the rank-`N` tensor containers; the `Custom` variant holds
/// a tensor assembled for a user-defined (registry) format, which is a valid
/// conversion *source* like every other variant.
///
/// The name `AnyMatrix` predates the rank-N generalisation and is kept as an
/// alias for source compatibility.
#[derive(Debug, Clone, PartialEq)]
pub enum AnyTensor {
    /// COO storage.
    Coo(CooMatrix),
    /// CSR storage.
    Csr(CsrMatrix),
    /// CSC storage.
    Csc(CscMatrix),
    /// DIA storage.
    Dia(DiaMatrix),
    /// ELL storage.
    Ell(EllMatrix),
    /// BCSR storage.
    Bcsr(BcsrMatrix),
    /// Skyline storage.
    Skyline(SkylineMatrix),
    /// JAD storage.
    Jad(JadMatrix),
    /// DOK storage.
    Dok(DokMatrix),
    /// Rank-`N` COO storage.
    Coo3(CooTensor),
    /// Rank-`N` CSF storage.
    Csf(CsfTensor),
    /// A tensor assembled for a user-defined (registry) format by the
    /// spec-driven driver.
    Custom(Box<CustomTensor>),
}

/// The historical (matrix-era) name for [`AnyTensor`].
pub type AnyMatrix = AnyTensor;

/// Applies a closure to the contained matrix as a [`SourceMatrix`]. The
/// rank-`N` tensor and custom variants must be dispatched by the caller
/// *before* reaching this macro; they have no [`SourceMatrix`] view.
macro_rules! with_source {
    ($matrix:expr, $binding:ident => $body:expr) => {
        match $matrix {
            AnyMatrix::Coo($binding) => $body,
            AnyMatrix::Csr($binding) => $body,
            AnyMatrix::Csc($binding) => $body,
            AnyMatrix::Dia($binding) => $body,
            AnyMatrix::Ell($binding) => $body,
            AnyMatrix::Bcsr($binding) => $body,
            AnyMatrix::Skyline($binding) => $body,
            AnyMatrix::Jad($binding) => $body,
            AnyMatrix::Dok($binding) => $body,
            AnyMatrix::Coo3(_) | AnyMatrix::Csf(_) | AnyMatrix::Custom(_) => {
                unreachable!("tensor and custom variants are dispatched before with_source!")
            }
        }
    };
}

impl AnyMatrix {
    /// The format this tensor is stored in, as a registry [`Format`] handle
    /// (compare with a [`FormatId`] directly — `Format` implements
    /// `PartialEq<FormatId>`).
    pub fn format(&self) -> Format {
        match self {
            AnyMatrix::Coo(_) => Format::coo(),
            AnyMatrix::Csr(_) => Format::csr(),
            AnyMatrix::Csc(_) => Format::csc(),
            AnyMatrix::Dia(_) => Format::dia(),
            AnyMatrix::Ell(_) => Format::ell(),
            AnyMatrix::Bcsr(m) => {
                let (block_rows, block_cols) = m.block_shape();
                Format::bcsr(block_rows, block_cols)
            }
            AnyMatrix::Skyline(_) => Format::skyline(),
            AnyMatrix::Jad(_) => Format::jad(),
            AnyMatrix::Dok(_) => Format::dok(),
            AnyMatrix::Coo3(_) => Format::coo3(),
            AnyMatrix::Csf(_) => Format::csf(),
            AnyMatrix::Custom(t) => Format::intern_spec(&t.spec),
        }
    }

    /// The canonical shape of the stored tensor.
    pub fn shape(&self) -> Shape {
        match self {
            AnyMatrix::Coo3(t) => t.shape().clone(),
            AnyMatrix::Csf(t) => t.shape().clone(),
            AnyMatrix::Custom(t) => t.shape().clone(),
            m => Shape::matrix(
                with_source!(m, s => SourceMatrix::rows(s)),
                with_source!(m, s => SourceMatrix::cols(s)),
            ),
        }
    }

    /// The tensor's order (number of dimensions).
    pub fn order(&self) -> usize {
        match self {
            AnyMatrix::Coo3(t) => t.order(),
            AnyMatrix::Csf(t) => t.order(),
            AnyMatrix::Custom(t) => t.order(),
            _ => 2,
        }
    }

    /// Number of rows (the extent of the first dimension).
    pub fn rows(&self) -> usize {
        match self {
            AnyMatrix::Coo3(t) => t.shape().dim(0),
            AnyMatrix::Csf(t) => t.shape().dim(0),
            AnyMatrix::Custom(t) => t.shape().dim(0),
            m => with_source!(m, s => SourceMatrix::rows(s)),
        }
    }

    /// Number of columns (the extent of the second dimension; 1 for order-1
    /// tensor containers, which have no second dimension).
    pub fn cols(&self) -> usize {
        let tensor_cols = |shape: &Shape| {
            if shape.order() > 1 {
                shape.dim(1)
            } else {
                1
            }
        };
        match self {
            AnyMatrix::Coo3(t) => tensor_cols(t.shape()),
            AnyMatrix::Csf(t) => tensor_cols(t.shape()),
            AnyMatrix::Custom(t) => tensor_cols(t.shape()),
            m => with_source!(m, s => SourceMatrix::cols(s)),
        }
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        match self {
            AnyMatrix::Coo3(t) => t.nnz(),
            AnyMatrix::Csf(t) => t.nnz(),
            AnyMatrix::Custom(t) => t.nnz(),
            m => with_source!(m, s => SourceMatrix::nnz(s)),
        }
    }

    /// Number of *stored* entries a conversion pass must visit: for padded
    /// formats (DIA, ELL, BCSR, skyline) the full values buffer including
    /// explicit zeros, for custom tensors the materialised value stream,
    /// and the nonzero count for everything else. This is the input-size
    /// attribute cost models should scale read work by.
    pub fn stored_entries(&self) -> usize {
        match self {
            AnyMatrix::Dia(m) => m.values().len(),
            AnyMatrix::Ell(m) => m.values().len(),
            AnyMatrix::Bcsr(m) => m.values().len(),
            AnyMatrix::Skyline(m) => m.values().len(),
            AnyMatrix::Custom(t) => t.vals.len(),
            other => other.nnz(),
        }
    }

    /// True when *this instance* iterates its nonzeros grouped by
    /// non-decreasing leading coordinate. Structurally row-major formats
    /// (CSR, skyline, CSF) always do; coordinate containers are checked
    /// against their stored index order (an O(nnz) early-exit scan), since
    /// a COO built from a row-major source replays rows in order while a
    /// shuffled one does not. Padded and column-major formats report false.
    pub fn iterates_rows_in_order(&self) -> bool {
        match self {
            AnyMatrix::Coo(m) => m.row_indices().windows(2).all(|w| w[0] <= w[1]),
            AnyMatrix::Coo3(t) => t.crd(0).windows(2).all(|w| w[0] <= w[1]),
            m => m
                .format()
                .id()
                .is_some_and(FormatId::iterates_rows_in_order),
        }
    }

    /// Converts to canonical triples (padding skipped).
    ///
    /// # Errors
    ///
    /// Returns [`ConvertError::UnsupportedSpec`] for a custom tensor whose
    /// remapping is not invertible (such formats are conversion targets
    /// only); every other variant is infallible.
    pub fn try_to_triples(&self) -> Result<SparseTriples, ConvertError> {
        match self {
            AnyMatrix::Coo3(t) => Ok(t.to_triples()),
            AnyMatrix::Csf(t) => Ok(t.to_triples()),
            AnyMatrix::Custom(t) => t.to_triples(),
            m => {
                let mut t = SparseTriples::with_capacity(self.shape(), self.nnz());
                with_source!(m, s => s.for_each(|i, j, v| {
                    t.push(vec![i as i64, j as i64], v).expect("source coordinates are in bounds");
                }));
                Ok(t)
            }
        }
    }

    /// Converts to canonical triples (padding skipped).
    ///
    /// # Panics
    ///
    /// Panics for a custom tensor whose remapping is not invertible; use
    /// [`AnyTensor::try_to_triples`] to handle that case as an error.
    pub fn to_triples(&self) -> SparseTriples {
        self.try_to_triples()
            .expect("this tensor's format cannot be read back; use try_to_triples")
    }

    /// Builds a tensor in the given format from canonical triples (via the
    /// reference constructors; conversion benchmarks use [`convert`] instead).
    /// Order-2 inputs route through [`CooMatrix`], higher orders through
    /// [`CooTensor`].
    ///
    /// # Errors
    ///
    /// Returns an error when the format cannot represent the input.
    pub fn from_triples<F: Into<Format>>(
        t: &SparseTriples,
        format: F,
    ) -> Result<Self, ConvertError> {
        let source = if t.order() == 2 {
            AnyMatrix::Coo(CooMatrix::from_triples(t))
        } else {
            AnyMatrix::Coo3(CooTensor::from_triples(t))
        };
        convert(&source, format)
    }
}

/// Converts a tensor to the requested target format — the single public
/// entry point of the conversion stack. The target is anything that resolves
/// to a [`Format`]: a stock [`FormatId`], a `&Format` handle (stock preset
/// or builder-made), or an owned `Format`.
///
/// Stock-to-stock pairs run on the monomorphised engine kernels; registry
/// (custom) targets run on the spec-driven dynamic driver; custom *sources*
/// are lowered through their level read-back and re-dispatched, so
/// custom↔stock and custom↔custom conversions round-trip like any other
/// pair.
///
/// # Errors
///
/// Returns an error when the target cannot represent the input (e.g. skyline
/// targets require square matrices, matrix targets require order-2 sources),
/// [`ConvertError::UnsupportedTarget`] for formats without a
/// coordinate-hierarchy specification (DOK is supported only as a conversion
/// source), or [`ConvertError::UnsupportedSpec`] when a custom source's
/// remapping cannot be inverted.
pub fn convert<F: Into<Format>>(src: &AnyMatrix, target: F) -> Result<AnyMatrix, ConvertError> {
    convert_to(src, &target.into())
}

fn convert_to(src: &AnyMatrix, target: &Format) -> Result<AnyMatrix, ConvertError> {
    // Custom sources lower to a canonical container through their level
    // read-back, then re-dispatch; this is what makes a builder-made format
    // a valid conversion *source*.
    if let AnyMatrix::Custom(t) = src {
        let triples = t.to_triples()?;
        let lowered = if triples.order() == 2 {
            AnyMatrix::Coo(CooMatrix::from_triples(&triples))
        } else {
            AnyMatrix::Coo3(CooTensor::from_triples(&triples))
        };
        return convert_to(&lowered, target);
    }
    let Some(id) = target.id() else {
        // A registry (custom) target: assemble through the dynamic
        // spec-driven driver — except mode-ordered CSF targets, where the
        // engine's sort-then-pack kernel reproduces the driver's output
        // byte for byte (the driver's stable sort of remapped tuples and
        // the engine's stable lexicographic sort of permuted columns order
        // the nonzeros identically).
        let spec = target
            .spec()
            .expect("non-stock formats always carry a spec");
        if let Some(order) = crate::mode::mode_order_of(spec) {
            if order.len() == src.order() {
                let csf = match src {
                    AnyMatrix::Coo3(t) => Some(engine::to_csf_ordered(t, &order)),
                    AnyMatrix::Csf(t) => Some(engine::to_csf_ordered(t, &order)),
                    m if order.len() == 2 => Some(
                        with_source!(m, s => engine::to_csf_ordered(&MatrixAsTensor::new(s), &order)),
                    ),
                    _ => None,
                };
                if let Some(csf) = csf {
                    let custom = crate::mode::custom_from_csf(spec, &order, &csf)?;
                    return Ok(AnyMatrix::Custom(Box::new(custom)));
                }
            }
        }
        return Ok(AnyMatrix::Custom(Box::new(generic::convert_with_spec(
            src, spec,
        )?)));
    };
    if matches!(id, FormatId::Dok) {
        return Err(ConvertError::UnsupportedTarget(id));
    }
    // Rank-N tensor sources convert among the tensor formats through the
    // rank-generic kernels; matrix targets cannot represent order-3
    // sources, but an *order-2* tensor container (e.g. the DCSR an order-2
    // matrix packs into CSF as) lowers through canonical triples, so
    // matrix -> CSF -> matrix round-trips. COO3 targets are strictly
    // order-3, matching the matrix-source rule below.
    if let AnyMatrix::Coo3(_) | AnyMatrix::Csf(_) = src {
        if src.order() == 2 && !matches!(id, FormatId::Coo3 | FormatId::Csf) {
            let lowered = AnyMatrix::Coo(CooMatrix::from_triples(&src.to_triples()));
            return convert_to(&lowered, target);
        }
        if id == FormatId::Coo3 && src.order() != 3 {
            return Err(ConvertError::Unsupported(format!(
                "COO3 targets require an order-3 source, got order-{} {}",
                src.order(),
                src.format()
            )));
        }
        return match (src, id) {
            (AnyMatrix::Coo3(t), FormatId::Coo3) => Ok(AnyMatrix::Coo3(engine::tensor_to_coo(t))),
            (AnyMatrix::Coo3(t), FormatId::Csf) => Ok(AnyMatrix::Csf(engine::to_csf(t))),
            (AnyMatrix::Csf(t), FormatId::Coo3) => Ok(AnyMatrix::Coo3(engine::tensor_to_coo(t))),
            (AnyMatrix::Csf(t), FormatId::Csf) => Ok(AnyMatrix::Csf(engine::to_csf(t))),
            _ => Err(ConvertError::Unsupported(format!(
                "{id} targets cannot represent an order-{} {} source",
                src.order(),
                src.format()
            ))),
        };
    }
    Ok(match id {
        FormatId::Coo => AnyMatrix::Coo(with_source!(src, m => engine::to_coo(m))),
        FormatId::Csr => AnyMatrix::Csr(with_source!(src, m => engine::to_csr(m))),
        // CSR sources take the blocked write-combining transpose (identical
        // output, cache-resident scatter for wide matrices).
        FormatId::Csc => AnyMatrix::Csc(match src {
            AnyMatrix::Csr(m) => engine::csr_to_csc_blocked(m),
            _ => with_source!(src, m => engine::to_csc(m)),
        }),
        FormatId::Dia => AnyMatrix::Dia(with_source!(src, m => engine::to_dia(m))?),
        FormatId::Ell => AnyMatrix::Ell(with_source!(src, m => engine::to_ell(m))),
        FormatId::Bcsr {
            block_rows,
            block_cols,
        } => AnyMatrix::Bcsr(with_source!(src, m => engine::to_bcsr(m, block_rows, block_cols))),
        FormatId::Skyline => AnyMatrix::Skyline(with_source!(src, m => engine::to_skyline(m))?),
        FormatId::Jad => AnyMatrix::Jad(with_source!(src, m => engine::to_jad(m))),
        // An order-2 source packs into CSF as DCSR through the adapter.
        FormatId::Csf => {
            AnyMatrix::Csf(with_source!(src, m => engine::to_csf(&MatrixAsTensor::new(m))))
        }
        FormatId::Coo3 => {
            return Err(ConvertError::Unsupported(format!(
                "COO3 targets require an order-3 source, got order-2 {}",
                src.format()
            )))
        }
        FormatId::Dok => unreachable!("rejected above"),
    })
}

/// Builds the conversion plan that [`convert`] follows for the given source
/// tensor and target format (for inspection, documentation, and ablation).
///
/// # Errors
///
/// Returns an error for targets without a coordinate-hierarchy specification
/// (DOK).
pub fn plan_for<F: Into<Format>>(
    src: &AnyMatrix,
    target: F,
) -> Result<ConversionPlan, ConvertError> {
    let rows_in_order = match src {
        // CSF's fiber-tree walk visits roots in ascending order; COO makes no
        // ordering promise.
        AnyMatrix::Coo3(_) => false,
        AnyMatrix::Csf(_) => true,
        AnyMatrix::Custom(t) => t.spec.iterates_rows_in_order(),
        m => with_source!(m, s => s.rows_in_order()),
    };
    let counts_from_structure = match src {
        AnyMatrix::Custom(t) => t.spec.counts_from_structure(),
        _ => src
            .format()
            .spec()
            .is_some_and(FormatSpec::counts_from_structure),
    };
    plan_with_props(
        &src.format(),
        &target.into(),
        rows_in_order,
        counts_from_structure,
    )
}

/// Builds the conversion plan for a format *pair*, without a tensor
/// instance: the per-instance properties are derived from the formats'
/// specifications (the same values every stock container reports). This is
/// the planner entry point conversion services cache on — the plan for a
/// pair never changes between calls, so it only needs to be built once.
/// Registry (custom) formats plan exactly like stock ones.
///
/// # Errors
///
/// Returns an error for targets without a coordinate-hierarchy specification
/// (DOK).
pub fn plan_for_formats(source: &Format, target: &Format) -> Result<ConversionPlan, ConvertError> {
    let (rows_in_order, counts_from_structure) = source.spec().map_or((false, false), |s| {
        (s.iterates_rows_in_order(), s.counts_from_structure())
    });
    plan_with_props(source, target, rows_in_order, counts_from_structure)
}

/// [`plan_for_formats`] over stock identifiers (transitional convenience).
///
/// # Errors
///
/// Returns an error for targets without a coordinate-hierarchy specification
/// (DOK).
pub fn plan_for_pair(source: FormatId, target: FormatId) -> Result<ConversionPlan, ConvertError> {
    plan_for_formats(&source.into(), &target.into())
}

fn plan_with_props(
    source: &Format,
    target: &Format,
    rows_in_order: bool,
    counts_from_structure: bool,
) -> Result<ConversionPlan, ConvertError> {
    let Some(target_spec) = target.spec() else {
        return Err(ConvertError::UnsupportedTarget(FormatId::Dok));
    };
    // DOK sources are planned through the COO spec (they have no coordinate
    // hierarchy of their own).
    let source_spec = match source.spec() {
        Some(spec) => spec.clone(),
        None => FormatSpec::stock(FormatId::Coo)?,
    };
    Ok(ConversionPlan::new(
        &source_spec,
        target_spec,
        rows_in_order,
        counts_from_structure,
    ))
}

/// All format identifiers evaluated in Section 7 (the benchmark set).
pub fn evaluated_formats() -> Vec<FormatId> {
    vec![
        FormatId::Coo,
        FormatId::Csr,
        FormatId::Csc,
        FormatId::Dia,
        FormatId::Ell,
    ]
}

/// The rank-N tensor format identifiers (Section 7's third-order
/// conversions).
pub fn tensor_formats() -> Vec<FormatId> {
    vec![FormatId::Coo3, FormatId::Csf]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_tensor::example::figure1_matrix;

    fn all_targets() -> Vec<FormatId> {
        vec![
            FormatId::Coo,
            FormatId::Csr,
            FormatId::Csc,
            FormatId::Dia,
            FormatId::Ell,
            FormatId::Bcsr {
                block_rows: 2,
                block_cols: 2,
            },
            FormatId::Jad,
        ]
    }

    #[test]
    fn every_pair_of_evaluated_formats_roundtrips() {
        let t = figure1_matrix();
        // Every target format plus DOK (a valid *source* built directly).
        let mut sources: Vec<AnyMatrix> = all_targets()
            .into_iter()
            .map(|f| AnyMatrix::from_triples(&t, f).unwrap())
            .collect();
        sources.push(AnyMatrix::Dok(DokMatrix::from_triples(&t)));
        for src in &sources {
            for dst in all_targets() {
                let converted = convert(src, dst).unwrap();
                assert_eq!(converted.format(), dst);
                assert!(
                    converted.to_triples().same_values(&t),
                    "conversion {} -> {} lost values",
                    src.format(),
                    dst
                );
            }
        }
    }

    #[test]
    fn dok_target_is_rejected_without_aborting() {
        let t = figure1_matrix();
        let m = AnyMatrix::from_triples(&t, FormatId::Coo).unwrap();
        assert_eq!(
            convert(&m, FormatId::Dok),
            Err(ConvertError::UnsupportedTarget(FormatId::Dok))
        );
        assert!(AnyMatrix::from_triples(&t, FormatId::Dok).is_err());
    }

    #[test]
    fn format_ids_round_trip_through_display_and_from_str() {
        let mut ids = all_targets();
        ids.push(FormatId::Skyline);
        ids.push(FormatId::Dok);
        ids.push(FormatId::Coo3);
        ids.push(FormatId::Csf);
        ids.push(FormatId::Bcsr {
            block_rows: 16,
            block_cols: 3,
        });
        for id in ids {
            let rendered = id.to_string();
            assert_eq!(rendered.parse::<FormatId>().unwrap(), id, "{rendered}");
            // CLI input is case-insensitive.
            assert_eq!(rendered.to_lowercase().parse::<FormatId>().unwrap(), id);
        }
        assert!("BCSRxx2".parse::<FormatId>().is_err());
        assert!("BCSR0x2".parse::<FormatId>().is_err());
        assert!("HICOO".parse::<FormatId>().is_err());
        assert!("".parse::<FormatId>().is_err());
        let msg = "HICOO".parse::<FormatId>().unwrap_err().to_string();
        assert!(msg.contains("HICOO"), "{msg}");
    }

    #[test]
    fn format_metadata_accessors() {
        let t = figure1_matrix();
        let m = AnyMatrix::from_triples(&t, FormatId::Csr).unwrap();
        assert_eq!(m.format(), FormatId::Csr);
        assert_eq!(m.rows(), 4);
        assert_eq!(m.cols(), 6);
        assert_eq!(m.nnz(), 9);
        assert_eq!(
            FormatId::Bcsr {
                block_rows: 2,
                block_cols: 3
            }
            .to_string(),
            "BCSR2x3"
        );
        assert_eq!(FormatId::Dia.to_string(), "DIA");
        assert_eq!(evaluated_formats().len(), 5);
    }

    #[test]
    fn order_3_sources_convert_between_tensor_formats() {
        let t = sparse_tensor::example::example3_tensor();
        let coo3 = AnyMatrix::from_triples(&t, FormatId::Coo3).unwrap();
        assert_eq!(coo3.format(), FormatId::Coo3);
        assert_eq!(coo3.order(), 3);
        assert_eq!(coo3.shape().dims(), &[3, 4, 5]);
        assert_eq!(coo3.nnz(), 8);
        let csf = convert(&coo3, FormatId::Csf).unwrap();
        assert_eq!(csf.format(), FormatId::Csf);
        assert!(csf.to_triples().same_values(&t));
        let back = convert(&csf, FormatId::Coo3).unwrap();
        assert!(back.to_triples().same_values(&t));
        // Identity conversions work on both tensor formats.
        assert!(convert(&coo3, FormatId::Coo3).is_ok());
        assert!(convert(&csf, FormatId::Csf).is_ok());
    }

    #[test]
    fn rank_mismatches_are_rejected_with_errors() {
        let t3 = sparse_tensor::example::example3_tensor();
        let coo3 = AnyMatrix::from_triples(&t3, FormatId::Coo3).unwrap();
        // Tensor source, matrix target.
        assert!(matches!(
            convert(&coo3, FormatId::Csr),
            Err(ConvertError::Unsupported(_))
        ));
        assert!(matches!(
            convert(&coo3, FormatId::Dok),
            Err(ConvertError::UnsupportedTarget(FormatId::Dok))
        ));
        // Matrix source, COO3 target.
        let m = AnyMatrix::from_triples(&figure1_matrix(), FormatId::Coo).unwrap();
        assert!(matches!(
            convert(&m, FormatId::Coo3),
            Err(ConvertError::Unsupported(_))
        ));
        // Matrix source, CSF target: supported (order-2 CSF is DCSR).
        let dcsr = convert(&m, FormatId::Csf).unwrap();
        assert_eq!(dcsr.format(), FormatId::Csf);
        assert_eq!(dcsr.order(), 2);
        assert!(dcsr.to_triples().same_values(&figure1_matrix()));
        // An order-2 CSF is a valid *source* for matrix targets too: the
        // matrix -> CSF -> matrix round-trip closes through triples.
        let back = convert(&dcsr, FormatId::Csr).unwrap();
        assert_eq!(back.format(), FormatId::Csr);
        assert!(back.to_triples().same_values(&figure1_matrix()));
        assert!(convert(&dcsr, FormatId::Ell).is_ok());
        assert!(matches!(
            convert(&dcsr, FormatId::Dok),
            Err(ConvertError::UnsupportedTarget(FormatId::Dok))
        ));
        // An order-2 CSF cannot masquerade as COO3 either — the COO3 target
        // is strictly order-3 regardless of the source container.
        assert!(matches!(
            convert(&dcsr, FormatId::Coo3),
            Err(ConvertError::Unsupported(_))
        ));
        assert!(convert(&dcsr, FormatId::Csf).is_ok());
    }

    #[test]
    fn tensor_pairs_have_plans() {
        let plan = plan_for_pair(FormatId::Coo3, FormatId::Csf).unwrap();
        assert_eq!(plan.source, "COO3");
        assert_eq!(plan.target, "CSF");
        assert_eq!(plan.counters, crate::plan::CounterStrategy::NotNeeded);
        let t = sparse_tensor::example::example3_tensor();
        let coo3 = AnyMatrix::from_triples(&t, FormatId::Coo3).unwrap();
        assert_eq!(plan_for(&coo3, FormatId::Csf).unwrap(), plan);
        let csf = convert(&coo3, FormatId::Csf).unwrap();
        assert_eq!(
            plan_for(&csf, FormatId::Coo3).unwrap(),
            plan_for_pair(FormatId::Csf, FormatId::Coo3).unwrap()
        );
        assert_eq!(tensor_formats().len(), 2);
        assert_eq!(FormatId::Csf.order(), 3);
        assert_eq!(FormatId::Csr.order(), 2);
    }

    #[test]
    fn skyline_target_requires_square_input() {
        let t = figure1_matrix();
        let m = AnyMatrix::from_triples(&t, FormatId::Coo).unwrap();
        assert!(matches!(
            convert(&m, FormatId::Skyline),
            Err(ConvertError::Unsupported(_))
        ));
    }

    #[test]
    fn plans_are_available_for_every_benchmarked_pair() {
        let t = figure1_matrix();
        let coo = AnyMatrix::from_triples(&t, FormatId::Coo).unwrap();
        let csr = AnyMatrix::from_triples(&t, FormatId::Csr).unwrap();
        let plan = plan_for(&coo, FormatId::Csr).unwrap();
        assert_eq!(plan.counters, crate::plan::CounterStrategy::NotNeeded);
        let plan = plan_for(&csr, FormatId::Ell).unwrap();
        assert_eq!(plan.counters, crate::plan::CounterStrategy::Scalar);
        let plan = plan_for(&coo, FormatId::Ell).unwrap();
        assert_eq!(plan.counters, crate::plan::CounterStrategy::Array);
        assert!(plan_for(&coo, FormatId::Dok).is_err());
    }

    #[test]
    fn instance_free_planning_agrees_with_instance_planning() {
        let t = figure1_matrix();
        for src in [FormatId::Coo, FormatId::Csr, FormatId::Csc] {
            let m = AnyMatrix::from_triples(&t, src).unwrap();
            for dst in all_targets() {
                assert_eq!(
                    plan_for_pair(src, dst).unwrap(),
                    plan_for(&m, dst).unwrap(),
                    "{src} -> {dst}"
                );
            }
        }
        assert_eq!(
            plan_for_pair(FormatId::Csr, FormatId::Dok),
            Err(ConvertError::UnsupportedTarget(FormatId::Dok))
        );
    }
}
