//! Mode-ordered CSF: the paper's "mode ordering" degree of freedom.
//!
//! A mode-ordered CSF format stores an order-N tensor as a CSF fiber tree
//! whose level `d` holds canonical mode `order[d]` — `CSF@2,0,1` puts mode
//! `k` outermost. Such formats are plain registry formats (an all-compressed
//! spec over a pure mode-permutation remapping), so the generic driver
//! already handles them; this module adds the detection and wrapping glue
//! that lets the monomorphised engine, the code generator, and the parallel
//! runtime serve the same targets bit-identically:
//!
//! * [`mode_order_of`] recognises a spec as a pure mode permutation,
//! * [`custom_from_csf`] wraps an engine-built [`CsfTensor`] into the exact
//!   [`CustomTensor`] the generic driver would assemble, and
//! * [`csf_ordered_name`] / [`parse_csf_ordered_name`] implement the
//!   `CSF@2,0,1` naming round-trip used by `Format::from_str`.

use coord_remap::{BoundsEnv, IndexExpr};
use sparse_formats::CsfTensor;

use crate::error::ConvertError;
use crate::generic::{CustomTensor, LevelOutput};
use crate::spec::FormatSpec;
use level_formats::LevelKind;

/// Recognises a spec describing mode-ordered CSF: every level compressed and
/// the remapping a pure permutation of the source variables (each destination
/// index a bare source variable, each variable used exactly once). Returns
/// the mode order — storage level `d` holds canonical mode `order[d]` — or
/// `None` for any other spec.
pub fn mode_order_of(spec: &FormatSpec) -> Option<Vec<usize>> {
    if spec.levels.is_empty() || spec.levels.iter().any(|k| *k != LevelKind::Compressed) {
        return None;
    }
    let remapping = &spec.remapping;
    if remapping.dst.len() != remapping.src.len() {
        return None;
    }
    let mut order = Vec::with_capacity(remapping.dst.len());
    let mut seen = vec![false; remapping.src.len()];
    for dst in &remapping.dst {
        if !dst.lets.is_empty() {
            return None;
        }
        let IndexExpr::Var(v) = &dst.expr else {
            return None;
        };
        let m = remapping.src.iter().position(|s| s == v)?;
        if seen[m] {
            return None;
        }
        seen[m] = true;
        order.push(m);
    }
    Some(order)
}

/// The registry name of the CSF format with the given mode order, e.g.
/// `CSF@2,0,1`.
pub fn csf_ordered_name(order: &[usize]) -> String {
    let modes: Vec<String> = order.iter().map(usize::to_string).collect();
    format!("CSF@{}", modes.join(","))
}

/// Parses a `CSF@2,0,1`-style name (case-insensitive prefix) into its mode
/// order. Returns `None` when the string is not of that shape or the listed
/// modes are not a permutation of `0..n`.
pub fn parse_csf_ordered_name(s: &str) -> Option<Vec<usize>> {
    if s.len() < 4 || !s[..4].eq_ignore_ascii_case("CSF@") {
        return None;
    }
    let rest = &s[4..];
    let order: Vec<usize> = rest
        .split(',')
        .map(|part| part.trim().parse().ok())
        .collect::<Option<_>>()?;
    let mut seen = vec![false; order.len()];
    for &m in &order {
        if m >= order.len() || seen[m] {
            return None;
        }
        seen[m] = true;
    }
    Some(order)
}

/// Wraps an engine-built CSF fiber tree (whose storage dimensions follow
/// `mode_order`) into the [`CustomTensor`] the dynamic driver would assemble
/// for the same spec, byte for byte: level 0 is rooted with `pos = [0, F0]`,
/// each deeper level reuses the fiber tree's `pos` arrays, and bounds come
/// from the same static inference the driver runs.
///
/// Duplicate canonical coordinates (which the fiber tree stores as adjacent
/// innermost entries) are rejected with the same error the dynamic driver
/// produces, so both paths agree on every input.
///
/// # Errors
///
/// Returns [`ConvertError::Unsupported`] for duplicate coordinates and
/// propagates bounds-inference failures.
pub fn custom_from_csf(
    spec: &FormatSpec,
    mode_order: &[usize],
    csf: &CsfTensor,
) -> Result<CustomTensor, ConvertError> {
    let order = csf.order();
    assert_eq!(mode_order.len(), order, "one mode per storage dimension");
    if order >= 2 {
        let pos = csf.pos(order - 2);
        let crd = csf.crd(order - 1);
        for fiber in pos.windows(2) {
            if (fiber[0] + 1..fiber[1]).any(|p| crd[p] == crd[p - 1]) {
                return Err(ConvertError::Unsupported(format!(
                    "the dynamic converter requires duplicate-free coordinates for {} \
                     targets; sum duplicates first (the engine path stores them verbatim)",
                    spec.name
                )));
            }
        }
    }
    // Recover the canonical (source) shape: storage dimension `d` has the
    // extent of canonical mode `mode_order[d]`.
    let mut dims = vec![0usize; order];
    for (d, &m) in mode_order.iter().enumerate() {
        dims[m] = csf.shape().dim(d);
    }
    let shape = sparse_tensor::Shape::new(dims);
    let env = BoundsEnv::for_remapping(&spec.remapping, shape.dims()).with_nnz(csf.nnz());
    let bounds = coord_remap::infer_bounds(&spec.remapping, &env)?;
    let mut levels = Vec::with_capacity(order);
    for l in 0..order {
        let pos = if l == 0 {
            vec![0, csf.num_fibers(0)]
        } else {
            csf.pos(l - 1).to_vec()
        };
        let crd = csf.crd(l).iter().map(|&c| c as i64).collect();
        levels.push(LevelOutput::Compressed { pos, crd });
    }
    Ok(CustomTensor {
        spec: spec.clone(),
        levels,
        vals: csf.values().to_vec(),
        source_shape: shape,
        bounds,
        nnz: csf.nnz(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::FormatId;

    #[test]
    fn stock_csf_spec_is_the_identity_order() {
        let spec = FormatSpec::stock(FormatId::Csf).unwrap();
        assert_eq!(mode_order_of(&spec), Some(vec![0, 1, 2]));
    }

    #[test]
    fn permuted_spec_reports_its_order() {
        let spec = FormatSpec::new(
            "CSF@2,0,1",
            coord_remap::stock::mode_permutation(&[2, 0, 1]),
            vec!["k", "i", "j"],
            vec![LevelKind::Compressed; 3],
        );
        assert_eq!(mode_order_of(&spec), Some(vec![2, 0, 1]));
    }

    #[test]
    fn non_permutation_specs_are_not_mode_ordered() {
        // CSR: dense root, and only two of the stock specs' levels compressed.
        let csr = FormatSpec::stock(FormatId::Csr).unwrap();
        assert_eq!(mode_order_of(&csr), None);
        // DIA's remapping computes j-i: not a bare variable.
        let dia = FormatSpec::stock(FormatId::Dia).unwrap();
        assert_eq!(mode_order_of(&dia), None);
    }

    #[test]
    fn name_round_trips_for_every_order3_permutation() {
        for order in [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ] {
            let name = csf_ordered_name(&order);
            assert_eq!(parse_csf_ordered_name(&name), Some(order.to_vec()));
        }
        assert_eq!(parse_csf_ordered_name("CSF@2,0,1"), Some(vec![2, 0, 1]));
        assert_eq!(parse_csf_ordered_name("csf@1,0"), Some(vec![1, 0]));
        assert_eq!(parse_csf_ordered_name("CSF@0,0,1"), None);
        assert_eq!(parse_csf_ordered_name("CSF@3,0,1"), None);
        assert_eq!(parse_csf_ordered_name("CSF@"), None);
        assert_eq!(parse_csf_ordered_name("CSR"), None);
    }
}
