//! Conversion code generation (the compiler path).
//!
//! This module plays the role of taco's code generator in the reproduction:
//! given a source and a target format, it emits an imperative [`conv_ir`]
//! routine implementing the conversion, structured exactly like the listings
//! of Figure 6 — a fused coordinate-remapping + analysis phase, one-shot
//! allocation from the analysis results, and a fused remapping + assembly
//! phase. The remapped coordinate expressions are lowered from the target's
//! [`FormatSpec`] remapping (they are not hard-coded per pair), and counters
//! are realised as scalars or arrays according to the conversion plan
//! (Section 4.2).
//!
//! Generated routines can be pretty printed ([`listing`]) for comparison with
//! Figure 6 and executed against real inputs through the IR interpreter
//! ([`execute`]), which the tests use to check the generated code against the
//! engine kernels bit for bit.
//!
//! Buffer naming conventions: the source is `A` (`A_pos`, `A_crd`, `A_vals`,
//! or `A1_crd`/`A2_crd` for COO), the output is `B`, and scalar inputs are
//! `N` (rows), `M` (columns), and `nnz`.

use conv_ir::build::*;
use conv_ir::interp::{Buffer, Interpreter};
use conv_ir::printer::print_function;
use conv_ir::simplify::simplify_function;
use conv_ir::{Expr, Function, Stmt};
use coord_remap::{BinOp as RBinOp, IndexExpr};
use sparse_formats::{CooMatrix, CooTensor, CscMatrix, CsfTensor, CsrMatrix, DiaMatrix, EllMatrix};

use crate::convert::{AnyMatrix, FormatId};
use crate::error::ConvertError;
use crate::format::Format;
use crate::spec::FormatSpec;

/// Lowers a coordinate-remapping index expression to an IR expression, given
/// the IR variable names bound to the source index variables. Counters are
/// handled by the caller (they become scalar or array counters in the
/// generated code), so this lowering rejects them.
fn lower_index_expr(expr: &IndexExpr, src_vars: &[(String, &str)]) -> Expr {
    match expr {
        IndexExpr::Const(c) => int(*c),
        IndexExpr::Var(name) => {
            let (_, ir_name) = src_vars
                .iter()
                .find(|(v, _)| v == name)
                .unwrap_or_else(|| panic!("unbound remapping variable `{name}`"));
            var(ir_name)
        }
        IndexExpr::LetVar(name) | IndexExpr::Param(name) => var(name),
        IndexExpr::Counter(_) => panic!("counters are lowered by the assembly generator"),
        IndexExpr::Binary(op, l, r) => {
            let l = lower_index_expr(l, src_vars);
            let r = lower_index_expr(r, src_vars);
            let op = match op {
                RBinOp::Add => conv_ir::IrBinOp::Add,
                RBinOp::Sub => conv_ir::IrBinOp::Sub,
                RBinOp::Mul => conv_ir::IrBinOp::Mul,
                RBinOp::Div => conv_ir::IrBinOp::Div,
                RBinOp::Rem => conv_ir::IrBinOp::Rem,
                RBinOp::Shl => conv_ir::IrBinOp::Shl,
                RBinOp::Shr => conv_ir::IrBinOp::Shr,
                RBinOp::And => conv_ir::IrBinOp::BitAnd,
                RBinOp::Or => conv_ir::IrBinOp::BitOr,
                RBinOp::Xor => conv_ir::IrBinOp::BitXor,
            };
            Expr::binary(op, l, r)
        }
    }
}

/// Wraps `body` (which may reference the IR variables `i`, `j` — and `k` for
/// order-3 sources — plus the value expression returned alongside) in loops
/// iterating the source format.
fn source_loops(source: FormatId, body: Vec<Stmt>) -> Result<Vec<Stmt>, ConvertError> {
    match source {
        FormatId::Coo3 => Ok(vec![for_(
            "p",
            int(0),
            var("nnz"),
            [
                vec![
                    decl("i", load("A1_crd", var("p"))),
                    decl("j", load("A2_crd", var("p"))),
                    decl("k", load("A3_crd", var("p"))),
                ],
                body,
            ]
            .concat(),
        )]),
        FormatId::Csf => Ok(vec![for_(
            "r",
            int(0),
            var("R1"),
            vec![
                decl("i", load("A1_crd", var("r"))),
                for_(
                    "s",
                    load("A2_pos", var("r")),
                    load("A2_pos", add(var("r"), int(1))),
                    vec![
                        decl("j", load("A2_crd", var("s"))),
                        for_(
                            "p",
                            load("A3_pos", var("s")),
                            load("A3_pos", add(var("s"), int(1))),
                            [vec![decl("k", load("A3_crd", var("p")))], body].concat(),
                        ),
                    ],
                ),
            ],
        )]),
        FormatId::Coo => Ok(vec![for_(
            "p",
            int(0),
            var("nnz"),
            [
                vec![
                    decl("i", load("A1_crd", var("p"))),
                    decl("j", load("A2_crd", var("p"))),
                ],
                body,
            ]
            .concat(),
        )]),
        FormatId::Csr => Ok(vec![for_(
            "i",
            int(0),
            var("N"),
            vec![for_(
                "p",
                load("A_pos", var("i")),
                load("A_pos", add(var("i"), int(1))),
                [vec![decl("j", load("A_crd", var("p")))], body].concat(),
            )],
        )]),
        FormatId::Csc => Ok(vec![for_(
            "j",
            int(0),
            var("M"),
            vec![for_(
                "p",
                load("A_pos", var("j")),
                load("A_pos", add(var("j"), int(1))),
                [vec![decl("i", load("A_crd", var("p")))], body].concat(),
            )],
        )]),
        other => Err(ConvertError::Unsupported(format!(
            "code generation does not support {other} sources yet"
        ))),
    }
}

/// The expression reading the current nonzero's value inside the source loops.
fn source_value(source: FormatId) -> Expr {
    match source {
        FormatId::Coo | FormatId::Csr | FormatId::Csc | FormatId::Coo3 | FormatId::Csf => {
            load("A_vals", var("p"))
        }
        _ => unreachable!("guarded by source_loops"),
    }
}

/// Generates a conversion routine from `source` to `target`.
///
/// # Errors
///
/// Returns [`ConvertError::Unsupported`] for combinations the generator does
/// not cover (supported sources: COO, CSR, CSC; targets: COO, CSR, CSC, DIA,
/// ELL).
pub fn generate(source: FormatId, target: FormatId) -> Result<Function, ConvertError> {
    let name = format!(
        "convert_{}_to_{}",
        source.to_string().to_lowercase(),
        target.to_string().to_lowercase()
    );
    let params: Vec<String> = match source {
        FormatId::Coo => vec!["A1_crd", "A2_crd", "A_vals", "N", "M", "nnz"],
        FormatId::Csr | FormatId::Csc => vec!["A_pos", "A_crd", "A_vals", "N", "M", "nnz"],
        FormatId::Coo3 => vec!["A1_crd", "A2_crd", "A3_crd", "A_vals", "N", "M", "L", "nnz"],
        FormatId::Csf => vec![
            "A1_crd", "A2_pos", "A2_crd", "A3_pos", "A3_crd", "A_vals", "N", "M", "L", "R1", "nnz",
        ],
        other => {
            return Err(ConvertError::Unsupported(format!(
                "code generation does not support {other} sources yet"
            )))
        }
    }
    .into_iter()
    .map(str::to_string)
    .collect();
    // Order-3 sources convert among the tensor formats; matrix targets
    // cannot represent them (and vice versa).
    let tensor_source = matches!(source, FormatId::Coo3 | FormatId::Csf);
    let tensor_target = matches!(target, FormatId::Coo3 | FormatId::Csf);
    if tensor_source != tensor_target {
        return Err(ConvertError::Unsupported(format!(
            "code generation cannot mix the order of {source} sources and {target} targets"
        )));
    }

    let target_spec = FormatSpec::stock(target)?;
    let body = match target {
        FormatId::Csr => gen_to_compressed(source, "i", "N")?,
        FormatId::Csc => gen_to_compressed(source, "j", "M")?,
        FormatId::Coo => gen_to_coo(source)?,
        FormatId::Dia => gen_to_dia(source, &target_spec)?,
        FormatId::Ell => gen_to_ell(source)?,
        FormatId::Csf => gen_to_csf(source)?,
        FormatId::Coo3 => gen_to_coo3(source)?,
        other => {
            return Err(ConvertError::Unsupported(format!(
                "code generation does not support {other} targets yet"
            )))
        }
    };
    Ok(simplify_function(&Function::new(&name, params, body)))
}

/// Pretty prints the generated routine for a pair as a C-like listing.
///
/// # Errors
///
/// Propagates [`generate`] errors.
pub fn listing(source: FormatId, target: FormatId) -> Result<String, ConvertError> {
    Ok(print_function(&generate(source, target)?))
}

/// Generates the COO3 → mode-ordered CSF conversion routine (the identity
/// order is [`generate`]'s stock COO3 → CSF listing, under a different
/// function name).
///
/// # Errors
///
/// Returns [`ConvertError::Unsupported`] when `mode_order` is not a
/// permutation of `0..3` or the source is not COO3.
pub fn generate_csf_ordered(
    source: FormatId,
    mode_order: &[usize; 3],
) -> Result<Function, ConvertError> {
    let mut seen = [false; 3];
    for &m in mode_order {
        if m >= 3 || seen[m] {
            return Err(ConvertError::Unsupported(format!(
                "mode order {mode_order:?} is not a permutation of 0..3"
            )));
        }
        seen[m] = true;
    }
    if source != FormatId::Coo3 {
        return Err(ConvertError::Unsupported(format!(
            "code generation does not support {source} sources for CSF targets yet"
        )));
    }
    let name = format!(
        "convert_{}_to_csf_{}{}{}",
        source.to_string().to_lowercase(),
        mode_order[0],
        mode_order[1],
        mode_order[2]
    );
    let params: Vec<String> = ["A1_crd", "A2_crd", "A3_crd", "A_vals", "N", "M", "L", "nnz"]
        .into_iter()
        .map(str::to_string)
        .collect();
    let body = gen_to_csf_ordered(source, mode_order)?;
    Ok(simplify_function(&Function::new(&name, params, body)))
}

/// Pretty prints the mode-ordered COO3 → CSF routine as a C-like listing.
///
/// # Errors
///
/// Propagates [`generate_csf_ordered`] errors.
pub fn listing_csf_ordered(
    source: FormatId,
    mode_order: &[usize; 3],
) -> Result<String, ConvertError> {
    Ok(print_function(&generate_csf_ordered(source, mode_order)?))
}

/// CSR/CSC-style target: count children per outer coordinate, prefix-sum into
/// `B_pos`, then scatter (Figure 6c generalised to any supported source).
fn gen_to_compressed(
    source: FormatId,
    outer_var: &str,
    outer_extent: &str,
) -> Result<Vec<Stmt>, ConvertError> {
    let mut body = vec![comment("analysis: count nonzeros per output group")];
    body.push(alloc_int("count", var(outer_extent), true));
    body.extend(source_loops(
        source,
        vec![store_add("count", var(outer_var), int(1))],
    )?);
    body.push(comment(
        "assembly: sequenced edge insertion (pos) then coordinate insertion",
    ));
    body.push(alloc_int("B_pos", add(var(outer_extent), int(1)), true));
    body.push(for_(
        "r",
        int(0),
        var(outer_extent),
        vec![store(
            "B_pos",
            add(var("r"), int(1)),
            add(load("B_pos", var("r")), load("count", var("r"))),
        )],
    ));
    body.push(alloc_int("B_crd", var("nnz"), false));
    body.push(alloc_float("B_vals", var("nnz"), false));
    body.push(alloc_int("cursor", var(outer_extent), true));
    let inner_var = if outer_var == "i" { "j" } else { "i" };
    body.extend(source_loops(
        source,
        vec![
            decl(
                "pB",
                add(
                    load("B_pos", var(outer_var)),
                    load("cursor", var(outer_var)),
                ),
            ),
            store_add("cursor", var(outer_var), int(1)),
            store("B_crd", var("pB"), var(inner_var)),
            store("B_vals", var("pB"), source_value(source)),
        ],
    )?);
    Ok(body)
}

/// COO target: append coordinates and values in source order.
fn gen_to_coo(source: FormatId) -> Result<Vec<Stmt>, ConvertError> {
    let mut body = vec![
        comment("assembly: append nonzeros in source order"),
        alloc_int("B1_crd", var("nnz"), false),
        alloc_int("B2_crd", var("nnz"), false),
        alloc_float("B_vals", var("nnz"), false),
        decl("q", int(0)),
    ];
    body.extend(source_loops(
        source,
        vec![
            store("B1_crd", var("q"), var("i")),
            store("B2_crd", var("q"), var("j")),
            store("B_vals", var("q"), source_value(source)),
            assign("q", add(var("q"), int(1))),
        ],
    )?);
    Ok(body)
}

/// DIA target (Figure 6a): the offset expression is lowered from the target
/// spec's remapping `(i,j) -> (j-i,i,j)` rather than hard-coded.
fn gen_to_dia(source: FormatId, spec: &FormatSpec) -> Result<Vec<Stmt>, ConvertError> {
    let src_vars = vec![("i".to_string(), "i"), ("j".to_string(), "j")];
    let offset_expr = lower_index_expr(&spec.remapping.dst[0].expr, &src_vars);
    let ndiag = sub(add(var("N"), var("M")), int(1));
    let shift = sub(var("N"), int(1));

    let mut body = vec![comment(
        "fused remapping + analysis: mark nonzero diagonals",
    )];
    body.push(alloc_int("nz", ndiag.clone(), true));
    body.extend(source_loops(
        source,
        vec![
            decl("k", offset_expr.clone()),
            store("nz", add(var("k"), shift.clone()), int(1)),
        ],
    )?);
    body.push(comment(
        "assembly: collect offsets (perm), build rperm, scatter values",
    ));
    body.push(alloc_int("B_perm", ndiag.clone(), false));
    body.push(decl("K", int(0)));
    body.push(for_(
        "d",
        int(0),
        ndiag.clone(),
        vec![if_(
            ne(load("nz", var("d")), int(0)),
            vec![
                store("B_perm", var("K"), sub(var("d"), shift.clone())),
                assign("K", add(var("K"), int(1))),
            ],
        )],
    ));
    body.push(alloc_int("rperm", ndiag, true));
    body.push(for_(
        "d",
        int(0),
        var("K"),
        vec![store(
            "rperm",
            add(load("B_perm", var("d")), shift.clone()),
            var("d"),
        )],
    ));
    body.push(alloc_float("B_vals", mul(var("K"), var("N")), true));
    body.extend(source_loops(
        source,
        vec![
            decl("k", offset_expr),
            decl("pB1", load("rperm", add(var("k"), shift))),
            decl("pB2", add(mul(var("pB1"), var("N")), var("i"))),
            store("B_vals", var("pB2"), source_value(source)),
        ],
    )?);
    Ok(body)
}

/// ELL target (Figure 6b): the `#i` counter is a scalar for row-ordered
/// sources and a counter array otherwise (Section 4.2).
fn gen_to_ell(source: FormatId) -> Result<Vec<Stmt>, ConvertError> {
    let mut body = vec![comment("analysis: maximum number of nonzeros in any row")];
    body.push(alloc_int("count", var("N"), true));
    body.extend(source_loops(
        source,
        vec![store_add("count", var("i"), int(1))],
    )?);
    body.push(decl("K", int(0)));
    body.push(for_(
        "r",
        int(0),
        var("N"),
        vec![assign("K", max(var("K"), load("count", var("r"))))],
    ));
    body.push(comment("assembly: scatter into K slices (calloc'd output)"));
    body.push(alloc_int("B_crd", mul(var("K"), var("N")), true));
    body.push(alloc_float("B_vals", mul(var("K"), var("N")), true));
    if source.iterates_rows_in_order() {
        // Scalar counter reset per row: re-emit the row loop directly.
        body.push(for_(
            "i",
            int(0),
            var("N"),
            vec![
                decl("c", int(0)),
                for_(
                    "p",
                    load("A_pos", var("i")),
                    load("A_pos", add(var("i"), int(1))),
                    vec![
                        decl("j", load("A_crd", var("p"))),
                        decl("pB", add(mul(var("c"), var("N")), var("i"))),
                        assign("c", add(var("c"), int(1))),
                        store("B_crd", var("pB"), var("j")),
                        store("B_vals", var("pB"), load("A_vals", var("p"))),
                    ],
                ),
            ],
        ));
    } else {
        body.push(alloc_int("counter", var("N"), true));
        body.extend(source_loops(
            source,
            vec![
                decl("c", load("counter", var("i"))),
                store_add("counter", var("i"), int(1)),
                decl("pB", add(mul(var("c"), var("N")), var("i"))),
                store("B_crd", var("pB"), var("j")),
                store("B_vals", var("pB"), source_value(source)),
            ],
        )?);
    }
    Ok(body)
}

/// One stable counting-sort pass over the working arrays, keyed by
/// `key_buf` with `extent` distinct values, scattering `(i, j, k, v)` from
/// the `src` array set into the `dst` array set.
fn counting_sort_pass(
    pass: usize,
    key_buf: &str,
    extent: &str,
    src: [&str; 4],
    dst: [&str; 4],
) -> Vec<Stmt> {
    let cnt = format!("cnt{pass}");
    let mut body = vec![comment(&format!(
        "stable counting sort by {key_buf} ({extent} buckets)"
    ))];
    body.push(alloc_int(&cnt, add(var(extent), int(1)), true));
    body.push(for_(
        "p",
        int(0),
        var("nnz"),
        vec![store_add(
            &cnt,
            add(load(key_buf, var("p")), int(1)),
            int(1),
        )],
    ));
    body.push(for_(
        "r",
        int(0),
        var(extent),
        vec![store(
            &cnt,
            add(var("r"), int(1)),
            add(load(&cnt, add(var("r"), int(1))), load(&cnt, var("r"))),
        )],
    ));
    for (n, name) in dst.iter().enumerate() {
        if n < 3 {
            body.push(alloc_int(name, var("nnz"), false));
        } else {
            body.push(alloc_float(name, var("nnz"), false));
        }
    }
    body.push(for_(
        "p",
        int(0),
        var("nnz"),
        vec![
            decl("d", load(&cnt, load(key_buf, var("p")))),
            store_add(&cnt, load(key_buf, var("p")), int(1)),
            store(dst[0], var("d"), load(src[0], var("p"))),
            store(dst[1], var("d"), load(src[1], var("p"))),
            store(dst[2], var("d"), load(src[2], var("p"))),
            store(dst[3], var("d"), load(src[3], var("p"))),
        ],
    ));
    body
}

/// COO3 → CSF: the paper's tensor sort-then-pack conversion, lowered to the
/// IR. The lexicographic sort is realised as three stable counting-sort
/// passes (least-significant dimension first), which is bit-identical to the
/// engine's stable comparison sort; the pack pass then opens a fresh fiber
/// at the first level whose coordinate changes.
fn gen_to_csf(source: FormatId) -> Result<Vec<Stmt>, ConvertError> {
    gen_to_csf_ordered(source, &[0, 1, 2])
}

/// COO3 → CSF along an arbitrary mode order: the same three-pass stable LSD
/// counting sort, keyed innermost-storage-dimension first on the *canonical*
/// buffers holding each storage dimension's mode, then the unchanged pack
/// pass over the storage-ordered arrays. The identity order reproduces
/// [`gen_to_csf`]'s canonical listing.
fn gen_to_csf_ordered(source: FormatId, order: &[usize; 3]) -> Result<Vec<Stmt>, ConvertError> {
    if source != FormatId::Coo3 {
        return Err(ConvertError::Unsupported(format!(
            "code generation does not support {source} sources for CSF targets yet"
        )));
    }
    // Canonical mode `m` lives in source buffer `A{m+1}_crd` (and the
    // working arrays suffixed with its index variable) with extent N/M/L.
    const SYM: [&str; 3] = ["i", "j", "k"];
    const EXTENT: [&str; 3] = ["N", "M", "L"];
    let mut body = vec![comment(&format!(
        "sort: LSD radix over ({}, {}, {}) = stable lexicographic order",
        SYM[order[2]], SYM[order[1]], SYM[order[0]],
    ))];
    body.extend(counting_sort_pass(
        1,
        &format!("A{}_crd", order[2] + 1),
        EXTENT[order[2]],
        ["A1_crd", "A2_crd", "A3_crd", "A_vals"],
        ["t1_i", "t1_j", "t1_k", "t1_v"],
    ));
    body.extend(counting_sort_pass(
        2,
        &format!("t1_{}", SYM[order[1]]),
        EXTENT[order[1]],
        ["t1_i", "t1_j", "t1_k", "t1_v"],
        ["t2_i", "t2_j", "t2_k", "t2_v"],
    ));
    body.extend(counting_sort_pass(
        3,
        &format!("t2_{}", SYM[order[0]]),
        EXTENT[order[0]],
        ["t2_i", "t2_j", "t2_k", "t2_v"],
        ["s_i", "s_j", "s_k", "s_v"],
    ));
    body.push(comment(
        "pack: append fibers where a coordinate prefix changes",
    ));
    body.push(alloc_int("B1_crd", var("nnz"), false));
    body.push(alloc_int("B2_pos", add(var("nnz"), int(1)), true));
    body.push(alloc_int("B2_crd", var("nnz"), false));
    body.push(alloc_int("B3_pos", add(var("nnz"), int(1)), true));
    body.push(alloc_int("B3_crd", var("nnz"), false));
    body.push(alloc_float("B_vals", var("nnz"), false));
    body.push(decl("q1", int(0)));
    body.push(decl("q2", int(0)));
    body.push(decl("prev_i", int(-1)));
    body.push(decl("prev_j", int(-1)));
    body.push(for_(
        "p",
        int(0),
        var("nnz"),
        vec![
            decl("i", load(&format!("s_{}", SYM[order[0]]), var("p"))),
            decl("j", load(&format!("s_{}", SYM[order[1]]), var("p"))),
            if_(
                ne(var("i"), var("prev_i")),
                vec![
                    store("B1_crd", var("q1"), var("i")),
                    assign("q1", add(var("q1"), int(1))),
                    assign("prev_i", var("i")),
                    assign("prev_j", int(-1)),
                ],
            ),
            if_(
                ne(var("j"), var("prev_j")),
                vec![
                    store("B2_crd", var("q2"), var("j")),
                    assign("q2", add(var("q2"), int(1))),
                    store("B2_pos", var("q1"), var("q2")),
                    assign("prev_j", var("j")),
                ],
            ),
            store(
                "B3_crd",
                var("p"),
                load(&format!("s_{}", SYM[order[2]]), var("p")),
            ),
            store("B_vals", var("p"), load("s_v", var("p"))),
            store("B3_pos", var("q2"), add(var("p"), int(1))),
        ],
    ));
    Ok(body)
}

/// CSF / COO3 → COO3: append coordinates and values in source order (the
/// order-3 analogue of [`gen_to_coo`]).
fn gen_to_coo3(source: FormatId) -> Result<Vec<Stmt>, ConvertError> {
    let mut body = vec![
        comment("assembly: append nonzeros in source order"),
        alloc_int("B1_crd", var("nnz"), false),
        alloc_int("B2_crd", var("nnz"), false),
        alloc_int("B3_crd", var("nnz"), false),
        alloc_float("B_vals", var("nnz"), false),
        decl("q", int(0)),
    ];
    body.extend(source_loops(
        source,
        vec![
            store("B1_crd", var("q"), var("i")),
            store("B2_crd", var("q"), var("j")),
            store("B3_crd", var("q"), var("k")),
            store("B_vals", var("q"), source_value(source)),
            assign("q", add(var("q"), int(1))),
        ],
    )?);
    Ok(body)
}

/// Executes a generated routine on an actual matrix and reconstructs the
/// target container from the output buffers.
///
/// # Errors
///
/// Returns an error when the pair is unsupported, the source container does
/// not match `source`, or the generated code fails to execute.
pub fn execute(src: &AnyMatrix, target: FormatId) -> Result<AnyMatrix, ConvertError> {
    let source = src.format().id().ok_or_else(|| {
        ConvertError::Unsupported(format!(
            "code generation covers stock format pairs; {} is a registry \
             format (use the dynamic driver)",
            src.format()
        ))
    })?;
    let function = generate(source, target)?;
    let mut interp = Interpreter::new();
    let shape = src.shape();
    if matches!(src, AnyMatrix::Coo3(_) | AnyMatrix::Csf(_)) && shape.order() != 3 {
        return Err(ConvertError::Unsupported(format!(
            "code generation supports order-3 tensor sources only, got order {}",
            shape.order()
        )));
    }
    interp.insert_int("N", shape.dim(0) as i64);
    interp.insert_int("M", shape.dim(1) as i64);
    if shape.order() > 2 {
        interp.insert_int("L", shape.dim(2) as i64);
    }
    interp.insert_int("nnz", src.nnz() as i64);
    match src {
        AnyMatrix::Coo(m) => {
            interp.insert_buffer(
                "A1_crd",
                Buffer::Ints(m.row_indices().iter().map(|&x| x as i64).collect()),
            );
            interp.insert_buffer(
                "A2_crd",
                Buffer::Ints(m.col_indices().iter().map(|&x| x as i64).collect()),
            );
            interp.insert_buffer("A_vals", Buffer::Floats(m.values().to_vec()));
        }
        AnyMatrix::Csr(m) => {
            interp.insert_buffer(
                "A_pos",
                Buffer::Ints(m.pos().iter().map(|&x| x as i64).collect()),
            );
            interp.insert_buffer(
                "A_crd",
                Buffer::Ints(m.crd().iter().map(|&x| x as i64).collect()),
            );
            interp.insert_buffer("A_vals", Buffer::Floats(m.values().to_vec()));
        }
        AnyMatrix::Csc(m) => {
            interp.insert_buffer(
                "A_pos",
                Buffer::Ints(m.pos().iter().map(|&x| x as i64).collect()),
            );
            interp.insert_buffer(
                "A_crd",
                Buffer::Ints(m.crd().iter().map(|&x| x as i64).collect()),
            );
            interp.insert_buffer("A_vals", Buffer::Floats(m.values().to_vec()));
        }
        AnyMatrix::Coo3(t) => {
            for (d, name) in ["A1_crd", "A2_crd", "A3_crd"].into_iter().enumerate() {
                interp.insert_buffer(
                    name,
                    Buffer::Ints(t.crd(d).iter().map(|&x| x as i64).collect()),
                );
            }
            interp.insert_buffer("A_vals", Buffer::Floats(t.values().to_vec()));
        }
        AnyMatrix::Csf(t) => {
            interp.insert_int("R1", t.num_fibers(0) as i64);
            interp.insert_buffer(
                "A1_crd",
                Buffer::Ints(t.crd(0).iter().map(|&x| x as i64).collect()),
            );
            interp.insert_buffer(
                "A2_pos",
                Buffer::Ints(t.pos(0).iter().map(|&x| x as i64).collect()),
            );
            interp.insert_buffer(
                "A2_crd",
                Buffer::Ints(t.crd(1).iter().map(|&x| x as i64).collect()),
            );
            interp.insert_buffer(
                "A3_pos",
                Buffer::Ints(t.pos(1).iter().map(|&x| x as i64).collect()),
            );
            interp.insert_buffer(
                "A3_crd",
                Buffer::Ints(t.crd(2).iter().map(|&x| x as i64).collect()),
            );
            interp.insert_buffer("A_vals", Buffer::Floats(t.values().to_vec()));
        }
        other => {
            return Err(ConvertError::Unsupported(format!(
                "code generation does not support {} sources yet",
                other.format()
            )))
        }
    }
    interp.run(&function)?;

    let rows = src.rows();
    let cols = src.cols();
    let ints = |interp: &Interpreter, name: &str| -> Vec<usize> {
        interp
            .buffer(name)
            .expect("generated buffer")
            .as_ints()
            .iter()
            .map(|&x| x as usize)
            .collect()
    };
    let floats = |interp: &Interpreter, name: &str| -> Vec<f64> {
        interp
            .buffer(name)
            .expect("generated buffer")
            .as_floats()
            .to_vec()
    };
    Ok(match target {
        FormatId::Csr => AnyMatrix::Csr(CsrMatrix::from_parts(
            rows,
            cols,
            ints(&interp, "B_pos"),
            ints(&interp, "B_crd"),
            floats(&interp, "B_vals"),
        )?),
        FormatId::Csc => AnyMatrix::Csc(CscMatrix::from_parts(
            rows,
            cols,
            ints(&interp, "B_pos"),
            ints(&interp, "B_crd"),
            floats(&interp, "B_vals"),
        )?),
        FormatId::Coo => AnyMatrix::Coo(CooMatrix::from_parts(
            rows,
            cols,
            ints(&interp, "B1_crd"),
            ints(&interp, "B2_crd"),
            floats(&interp, "B_vals"),
        )?),
        FormatId::Dia => {
            let k = interp.int("K").expect("generated scalar K") as usize;
            let perm_full = interp.buffer("B_perm").expect("generated buffer").as_ints();
            let offsets: Vec<i64> = perm_full[..k].to_vec();
            AnyMatrix::Dia(DiaMatrix::from_parts(
                rows,
                cols,
                offsets,
                floats(&interp, "B_vals"),
            )?)
        }
        FormatId::Ell => {
            let k = interp.int("K").expect("generated scalar K") as usize;
            AnyMatrix::Ell(EllMatrix::from_parts(
                rows,
                cols,
                k,
                ints(&interp, "B_crd"),
                floats(&interp, "B_vals"),
            )?)
        }
        FormatId::Csf => {
            let q1 = interp.int("q1").expect("generated scalar q1") as usize;
            let q2 = interp.int("q2").expect("generated scalar q2") as usize;
            let nnz = src.nnz();
            AnyMatrix::Csf(CsfTensor::from_parts(
                shape,
                vec![
                    ints(&interp, "B1_crd")[..q1].to_vec(),
                    ints(&interp, "B2_crd")[..q2].to_vec(),
                    ints(&interp, "B3_crd")[..nnz].to_vec(),
                ],
                vec![
                    ints(&interp, "B2_pos")[..q1 + 1].to_vec(),
                    ints(&interp, "B3_pos")[..q2 + 1].to_vec(),
                ],
                floats(&interp, "B_vals")[..nnz].to_vec(),
            )?)
        }
        FormatId::Coo3 => AnyMatrix::Coo3(CooTensor::from_parts(
            shape,
            vec![
                ints(&interp, "B1_crd"),
                ints(&interp, "B2_crd"),
                ints(&interp, "B3_crd"),
            ],
            floats(&interp, "B_vals"),
        )?),
        other => {
            return Err(ConvertError::Unsupported(format!(
                "code generation does not support {other} targets yet"
            )))
        }
    })
}

/// Executes a generated routine for any [`Format`] target: stock targets
/// dispatch through [`execute`]; mode-ordered CSF registry targets run the
/// counting-sort lowering and wrap the packed fiber tree exactly as the
/// dynamic driver assembles it, so all three execution paths stay
/// byte-comparable.
///
/// # Errors
///
/// Returns [`ConvertError::Unsupported`] for registry targets that are not
/// mode-ordered CSF, for non-COO3 sources of mode-ordered targets, and for
/// duplicate coordinates (which the dynamic driver also rejects).
pub fn execute_format(src: &AnyMatrix, target: &Format) -> Result<AnyMatrix, ConvertError> {
    if let Some(id) = target.id() {
        return execute(src, id);
    }
    let spec = target
        .spec()
        .expect("non-stock formats always carry a spec");
    let Some(order) = crate::mode::mode_order_of(spec) else {
        return Err(ConvertError::Unsupported(format!(
            "code generation covers stock formats and mode-ordered CSF; {target} \
             is a general registry format (use the dynamic driver)"
        )));
    };
    let AnyMatrix::Coo3(t) = src else {
        return Err(ConvertError::Unsupported(format!(
            "code generation supports COO3 sources for mode-ordered CSF targets, got {}",
            src.format()
        )));
    };
    if t.order() != 3 || order.len() != 3 {
        return Err(ConvertError::Unsupported(format!(
            "mode-ordered code generation is order-3 only (source order {}, \
             {} storage levels)",
            t.order(),
            order.len()
        )));
    }
    let mode_order = [order[0], order[1], order[2]];
    let function = generate_csf_ordered(FormatId::Coo3, &mode_order)?;
    let mut interp = Interpreter::new();
    let shape = t.shape();
    interp.insert_int("N", shape.dim(0) as i64);
    interp.insert_int("M", shape.dim(1) as i64);
    interp.insert_int("L", shape.dim(2) as i64);
    interp.insert_int("nnz", t.nnz() as i64);
    for (d, name) in ["A1_crd", "A2_crd", "A3_crd"].into_iter().enumerate() {
        interp.insert_buffer(
            name,
            Buffer::Ints(t.crd(d).iter().map(|&x| x as i64).collect()),
        );
    }
    interp.insert_buffer("A_vals", Buffer::Floats(t.values().to_vec()));
    interp.run(&function)?;
    let ints = |name: &str| -> Vec<usize> {
        interp
            .buffer(name)
            .expect("generated buffer")
            .as_ints()
            .iter()
            .map(|&x| x as usize)
            .collect()
    };
    let q1 = interp.int("q1").expect("generated scalar q1") as usize;
    let q2 = interp.int("q2").expect("generated scalar q2") as usize;
    let nnz = t.nnz();
    let packed_shape =
        sparse_tensor::Shape::new(mode_order.iter().map(|&m| shape.dim(m)).collect());
    let csf = CsfTensor::from_parts(
        packed_shape,
        vec![
            ints("B1_crd")[..q1].to_vec(),
            ints("B2_crd")[..q2].to_vec(),
            ints("B3_crd")[..nnz].to_vec(),
        ],
        vec![
            ints("B2_pos")[..q1 + 1].to_vec(),
            ints("B3_pos")[..q2 + 1].to_vec(),
        ],
        interp
            .buffer("B_vals")
            .expect("generated buffer")
            .as_floats()[..nnz]
            .to_vec(),
    )?;
    Ok(AnyMatrix::Custom(Box::new(crate::mode::custom_from_csf(
        spec, &order, &csf,
    )?)))
}

/// The (source, target) pairs the code generator covers, including the seven
/// pairs evaluated in Table 3.
pub fn supported_pairs() -> Vec<(FormatId, FormatId)> {
    let sources = [FormatId::Coo, FormatId::Csr, FormatId::Csc];
    let targets = [
        FormatId::Coo,
        FormatId::Csr,
        FormatId::Csc,
        FormatId::Dia,
        FormatId::Ell,
    ];
    let mut out = Vec::new();
    for s in sources {
        for t in targets {
            if s != t {
                out.push((s, t));
            }
        }
    }
    out
}

/// The order-3 (source, target) pairs the code generator covers (the
/// paper's tensor sorting/packing conversions).
pub fn supported_tensor_pairs() -> Vec<(FormatId, FormatId)> {
    vec![
        (FormatId::Coo3, FormatId::Csf),
        (FormatId::Csf, FormatId::Coo3),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::convert;
    use sparse_formats::CooMatrix;
    use sparse_tensor::example::figure1_matrix;

    #[test]
    fn generated_listings_have_figure6_structure() {
        let csr_dia = listing(FormatId::Csr, FormatId::Dia).unwrap();
        assert!(csr_dia.contains("convert_csr_to_dia"));
        // The DIA offset expression comes from the remapping (j - i).
        assert!(csr_dia.contains("(j - i)"), "listing:\n{csr_dia}");
        assert!(csr_dia.contains("calloc"));
        assert!(csr_dia.contains("rperm"));

        let csr_ell = listing(FormatId::Csr, FormatId::Ell).unwrap();
        assert!(csr_ell.contains("max(K, count[r])"));
        // Scalar counter for the row-ordered CSR source.
        assert!(csr_ell.contains("int c = 0;"), "listing:\n{csr_ell}");

        let coo_ell = listing(FormatId::Coo, FormatId::Ell).unwrap();
        // Counter array for the unordered COO source.
        assert!(coo_ell.contains("counter"), "listing:\n{coo_ell}");

        let coo_csr = listing(FormatId::Coo, FormatId::Csr).unwrap();
        assert!(coo_csr.contains("B_pos"));
        assert!(coo_csr.contains("count"));
    }

    #[test]
    fn generated_code_matches_engine_for_all_supported_pairs() {
        let t = figure1_matrix();
        for (source, target) in supported_pairs() {
            let src = AnyMatrix::from_triples(&t, source).unwrap();
            let generated = execute(&src, target).unwrap();
            let engine_result = convert(&src, target).unwrap();
            assert_eq!(
                generated, engine_result,
                "generated code disagrees with the engine for {source} -> {target}"
            );
        }
    }

    #[test]
    fn generated_code_handles_unsorted_coo() {
        let t = figure1_matrix();
        let mut coo = CooMatrix::from_triples(&t);
        let mut state = 11usize;
        coo.shuffle_with(|bound| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(7);
            state % bound
        });
        let src = AnyMatrix::Coo(coo);
        for target in [FormatId::Csr, FormatId::Dia, FormatId::Ell, FormatId::Csc] {
            let generated = execute(&src, target).unwrap();
            assert!(generated.to_triples().same_values(&t), "target {target}");
        }
    }

    #[test]
    fn generated_tensor_code_matches_engine() {
        let t = sparse_tensor::example::example3_tensor();
        for (source, target) in supported_tensor_pairs() {
            let src = AnyMatrix::from_triples(&t, source).unwrap();
            let generated = execute(&src, target).unwrap();
            let engine_result = convert(&src, target).unwrap();
            assert_eq!(
                generated, engine_result,
                "generated code disagrees with the engine for {source} -> {target}"
            );
        }
    }

    #[test]
    fn generated_coo3_to_csf_handles_shuffled_input() {
        let t = sparse_tensor::example::example3_tensor();
        let mut coo = sparse_formats::CooTensor::from_triples(&t);
        let mut state = 23usize;
        coo.shuffle_with(|bound| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(13);
            state % bound
        });
        let src = AnyMatrix::Coo3(coo.clone());
        let generated = execute(&src, FormatId::Csf).unwrap();
        // The counting-sort lowering must match the engine's stable sort on
        // the same (shuffled) input, bit for bit.
        assert_eq!(generated, AnyMatrix::Csf(crate::engine::to_csf(&coo)));
        assert!(generated.to_triples().same_values(&t));
    }

    #[test]
    fn tensor_listings_have_sort_and_pack_phases() {
        let listing = listing(FormatId::Coo3, FormatId::Csf).unwrap();
        assert!(listing.contains("convert_coo3_to_csf"));
        assert!(listing.contains("stable counting sort"), "{listing}");
        assert!(listing.contains("B2_pos"), "{listing}");
        assert!(listing.contains("B3_pos"), "{listing}");
    }

    #[test]
    fn mixed_order_pairs_are_rejected() {
        assert!(generate(FormatId::Coo3, FormatId::Csr).is_err());
        assert!(generate(FormatId::Csr, FormatId::Csf).is_err());
        assert!(generate(FormatId::Csf, FormatId::Csf).is_err());
        // An order-2 CSF container cannot drive the order-3 generated code.
        let m = figure1_matrix();
        let dcsr = convert(&AnyMatrix::Coo(CooMatrix::from_triples(&m)), FormatId::Csf).unwrap();
        assert!(execute(&dcsr, FormatId::Coo3).is_err());
    }

    #[test]
    fn unsupported_pairs_are_reported() {
        assert!(generate(FormatId::Dia, FormatId::Csr).is_err());
        assert!(generate(FormatId::Csr, FormatId::Jad).is_err());
        let t = figure1_matrix();
        let dia = AnyMatrix::from_triples(&t, FormatId::Dia).unwrap();
        assert!(execute(&dia, FormatId::Csr).is_err());
    }

    #[test]
    fn statement_counts_are_reasonable() {
        // The generated CSR->DIA routine should be in the same ballpark as
        // Figure 6a (28 lines), not an order of magnitude larger.
        let f = generate(FormatId::Csr, FormatId::Dia).unwrap();
        assert!(f.statement_count() < 60, "got {}", f.statement_count());
    }
}
