//! Errors of the conversion engine.

use std::error::Error;
use std::fmt;

use crate::convert::FormatId;

/// Errors raised while planning or executing a conversion.
#[derive(Debug, Clone, PartialEq)]
pub enum ConvertError {
    /// The requested target format cannot represent the input (e.g. skyline
    /// targets require a square matrix).
    Unsupported(String),
    /// The requested format is not available as a conversion target (DOK is
    /// not described by a coordinate hierarchy; it is supported only as a
    /// conversion *source*).
    UnsupportedTarget(FormatId),
    /// The format specification itself is rejected: its level composition or
    /// remapping cannot be assembled by the dynamic driver (e.g. a banded
    /// level at the root, or edge insertion under a non-chainable ancestor).
    /// Builder-made specs surface this instead of panicking mid-assembly.
    UnsupportedSpec {
        /// Why the specification was rejected.
        reason: String,
    },
    /// An I/O operation failed while streaming tensor data (reading a
    /// dataset file, spilling or re-reading external-sort runs). Carries the
    /// rendered `std::io::Error`, which keeps this enum `Clone + PartialEq`.
    Io(String),
    /// A streamed dataset file (Matrix Market, FROSTT) failed to parse.
    Parse {
        /// 1-based line number the parser stopped at (0 when unknown).
        line: u64,
        /// What was wrong with the line.
        message: String,
    },
    /// The produced data structures failed validation.
    Structure(sparse_tensor::TensorError),
    /// A remapping failed to evaluate.
    Remap(coord_remap::RemapError),
    /// An attribute query failed to evaluate.
    Query(attr_query::QueryError),
    /// Generated IR failed to execute.
    Interp(conv_ir::interp::InterpError),
}

impl fmt::Display for ConvertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConvertError::Unsupported(msg) => write!(f, "unsupported conversion: {msg}"),
            ConvertError::UnsupportedTarget(id) => {
                write!(
                    f,
                    "{id} has no coordinate-hierarchy specification and cannot \
                     be a conversion target (it is supported only as a source)"
                )
            }
            ConvertError::UnsupportedSpec { reason } => {
                write!(f, "unsupported format specification: {reason}")
            }
            ConvertError::Io(msg) => write!(f, "I/O error: {msg}"),
            ConvertError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            ConvertError::Structure(e) => write!(f, "invalid output structure: {e}"),
            ConvertError::Remap(e) => write!(f, "remapping error: {e}"),
            ConvertError::Query(e) => write!(f, "attribute query error: {e}"),
            ConvertError::Interp(e) => write!(f, "generated code failed: {e}"),
        }
    }
}

impl Error for ConvertError {}

impl From<std::io::Error> for ConvertError {
    fn from(e: std::io::Error) -> Self {
        ConvertError::Io(e.to_string())
    }
}

impl From<sparse_tensor::TensorError> for ConvertError {
    fn from(e: sparse_tensor::TensorError) -> Self {
        ConvertError::Structure(e)
    }
}

impl From<coord_remap::RemapError> for ConvertError {
    fn from(e: coord_remap::RemapError) -> Self {
        ConvertError::Remap(e)
    }
}

impl From<attr_query::QueryError> for ConvertError {
    fn from(e: attr_query::QueryError) -> Self {
        ConvertError::Query(e)
    }
}

impl From<conv_ir::interp::InterpError> for ConvertError {
    fn from(e: conv_ir::interp::InterpError) -> Self {
        ConvertError::Interp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e: ConvertError = sparse_tensor::TensorError::InvalidStructure("bad pos".into()).into();
        assert!(e.to_string().contains("bad pos"));
        let e: ConvertError = coord_remap::RemapError::DivisionByZero.into();
        assert!(e.to_string().contains("remapping"));
        let e: ConvertError = attr_query::QueryError::Parse("x".into()).into();
        assert!(e.to_string().contains("query"));
        let e: ConvertError = conv_ir::interp::InterpError::DivisionByZero.into();
        assert!(e.to_string().contains("generated code"));
        assert!(ConvertError::Unsupported("skyline needs square".into())
            .to_string()
            .contains("skyline"));
        assert!(ConvertError::UnsupportedTarget(FormatId::Dok)
            .to_string()
            .contains("DOK"));
        assert!(ConvertError::UnsupportedSpec {
            reason: "banded level at the root".into()
        }
        .to_string()
        .contains("banded level at the root"));
        let e: ConvertError = std::io::Error::new(std::io::ErrorKind::NotFound, "no.mtx").into();
        assert!(e.to_string().contains("no.mtx"));
        assert!(ConvertError::Parse {
            line: 7,
            message: "bad coordinate".into()
        }
        .to_string()
        .contains("line 7"));
    }
}
