//! The conversion planner.
//!
//! Given a source and a target specification, the planner makes the decisions
//! the paper's code generator makes (Sections 3, 4.2 and 6.2):
//!
//! * whether coordinate remapping can be *fused* into the analysis and
//!   assembly passes (cheap arithmetic remappings are recomputed; complex
//!   remappings would be materialised),
//! * whether counters can use a single scalar (source iterates the counter
//!   index in order) or need a counter array,
//! * whether edge insertion can be *sequenced* (parent positions visited in
//!   order) or must be unsequenced with a trailing prefix sum,
//! * which attribute queries must be computed, and whether they can be
//!   answered from the source's structure without touching nonzeros,
//! * whether the assembly of adjacent output levels can be fused into a
//!   single pass over the input.

use std::fmt;

use crate::spec::FormatSpec;
use level_formats::LevelKind;

/// How counters in the target's remapping are realised (Section 4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterStrategy {
    /// The remapping has no counters.
    NotNeeded,
    /// A single scalar counter, reset per group (source iterates the counter
    /// index in order, e.g. CSR→ELL).
    Scalar,
    /// A counter array indexed by the counter's coordinates (unordered
    /// sources, e.g. COO→ELL).
    Array,
}

/// How edge insertion is performed for compressed-like output levels
/// (Section 6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeInsertionMode {
    /// No output level needs edge insertion (DIA, ELL targets).
    NotNeeded,
    /// Parent positions are visited in order, so `seq_insert_edges` applies.
    Sequenced,
    /// Counts are scattered and prefix-summed afterwards
    /// (`unseq_insert_edges` + `unseq_finalize_edges`).
    Unsequenced,
}

/// A conversion plan: the decisions made for one (source, target) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct ConversionPlan {
    /// Source format name.
    pub source: String,
    /// Target format name.
    pub target: String,
    /// Whether the remapping is recomputed in each pass (fused) instead of
    /// materialising remapped coordinates.
    pub fuse_remapping: bool,
    /// Counter realisation.
    pub counters: CounterStrategy,
    /// Edge insertion mode for the target's compressed-like levels.
    pub edge_insertion: EdgeInsertionMode,
    /// Attribute queries to compute during the analysis phase (rendered).
    pub queries: Vec<String>,
    /// True when every query can be answered from the source's structure
    /// (e.g. `pos` differencing) without iterating nonzeros.
    pub queries_from_structure: bool,
    /// True when all output levels are assembled in a single pass over the
    /// input (no CSR-style two-phase pos/crd construction).
    pub single_pass_assembly: bool,
    /// Number of passes over the input tensor's nonzeros the plan makes.
    pub input_passes: usize,
}

impl ConversionPlan {
    /// Plans the conversion from `source` to `target`.
    ///
    /// `source_rows_in_order` and `source_counts_from_structure` describe the
    /// source instance's properties (from [`crate::SourceMatrix`]).
    pub fn new(
        source: &FormatSpec,
        target: &FormatSpec,
        source_rows_in_order: bool,
        source_counts_from_structure: bool,
    ) -> Self {
        let counters = if !target.uses_counters() {
            CounterStrategy::NotNeeded
        } else if source_rows_in_order {
            CounterStrategy::Scalar
        } else {
            CounterStrategy::Array
        };
        let needs_edges = target.levels.iter().any(|k| {
            matches!(
                k,
                LevelKind::Compressed | LevelKind::CompressedNonUnique | LevelKind::Banded
            )
        });
        let edge_insertion = if !needs_edges {
            EdgeInsertionMode::NotNeeded
        } else if source_rows_in_order || target.levels[0] == LevelKind::Dense {
            // The parent of the compressed level is a dense level whose
            // positions are visited in order by a plain loop.
            EdgeInsertionMode::Sequenced
        } else {
            EdgeInsertionMode::Unsequenced
        };
        let queries: Vec<String> = target
            .required_queries()
            .iter()
            .map(|q| q.to_string())
            .collect();
        let queries_from_structure = source_counts_from_structure
            && !target.is_structured()
            && queries.iter().all(|q| q.contains("count("));
        // Targets without compressed levels can be assembled in one pass once
        // analysis is done; CSR-like targets need the two-phase pos/crd build.
        let single_pass_assembly = !needs_edges;
        // Passes over the input: analysis (unless answered from structure)
        // plus one assembly pass.
        let analysis_passes = if queries.is_empty() || queries_from_structure {
            0
        } else {
            1
        };
        ConversionPlan {
            source: source.name.clone(),
            target: target.name.clone(),
            fuse_remapping: true,
            counters,
            edge_insertion,
            queries,
            queries_from_structure,
            single_pass_assembly,
            input_passes: analysis_passes + 1,
        }
    }
}

impl fmt::Display for ConversionPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "conversion plan: {} -> {}", self.source, self.target)?;
        writeln!(
            f,
            "  coordinate remapping: {}",
            if self.fuse_remapping {
                "fused (recomputed per pass)"
            } else {
                "materialised"
            }
        )?;
        writeln!(f, "  counters: {:?}", self.counters)?;
        writeln!(f, "  edge insertion: {:?}", self.edge_insertion)?;
        if self.queries.is_empty() {
            writeln!(f, "  analysis: none")?;
        } else {
            writeln!(
                f,
                "  analysis: {} ({})",
                self.queries.join("; "),
                if self.queries_from_structure {
                    "from structure"
                } else {
                    "one pass over nonzeros"
                }
            )?;
        }
        writeln!(
            f,
            "  assembly: {}",
            if self.single_pass_assembly {
                "single pass"
            } else {
                "edge insertion + coordinate insertion"
            }
        )?;
        write!(f, "  passes over input nonzeros: {}", self.input_passes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::FormatId;

    fn plan(
        src: FormatId,
        dst: FormatId,
        in_order: bool,
        structural_counts: bool,
    ) -> ConversionPlan {
        ConversionPlan::new(
            &FormatSpec::stock(src).unwrap(),
            &FormatSpec::stock(dst).unwrap(),
            in_order,
            structural_counts,
        )
    }

    #[test]
    fn csr_to_ell_uses_scalar_counters() {
        let p = plan(FormatId::Csr, FormatId::Ell, true, true);
        assert_eq!(p.counters, CounterStrategy::Scalar);
        assert_eq!(p.edge_insertion, EdgeInsertionMode::NotNeeded);
        assert!(p.single_pass_assembly);
        assert!(p.to_string().contains("CSR -> ELL"));
    }

    #[test]
    fn coo_to_ell_needs_a_counter_array() {
        let p = plan(FormatId::Coo, FormatId::Ell, false, false);
        assert_eq!(p.counters, CounterStrategy::Array);
        assert_eq!(p.input_passes, 2);
    }

    #[test]
    fn coo_to_csr_uses_sequenced_edges_and_histogram() {
        let p = plan(FormatId::Coo, FormatId::Csr, false, false);
        assert_eq!(p.counters, CounterStrategy::NotNeeded);
        assert_eq!(p.edge_insertion, EdgeInsertionMode::Sequenced);
        assert!(!p.queries_from_structure);
        assert_eq!(p.queries, vec!["select [i] -> count(j) as nir".to_string()]);
        assert!(!p.single_pass_assembly);
    }

    #[test]
    fn csr_to_csc_answers_counts_from_structure_only_when_counts_are_cheap() {
        // CSR -> CSC needs column counts, which are not derivable from the
        // row-oriented pos array, so the caller passes `false`.
        let p = plan(FormatId::Csr, FormatId::Csc, true, false);
        assert!(!p.queries_from_structure);
        assert_eq!(p.input_passes, 2);
        // CSR -> CSR (identity) could read row counts straight off pos.
        let p = plan(FormatId::Csr, FormatId::Csr, true, true);
        assert!(p.queries_from_structure);
        assert_eq!(p.input_passes, 1);
    }

    #[test]
    fn dia_target_is_single_pass_after_analysis() {
        let p = plan(FormatId::Csr, FormatId::Dia, true, true);
        assert_eq!(p.edge_insertion, EdgeInsertionMode::NotNeeded);
        assert!(p.single_pass_assembly);
        assert_eq!(p.queries, vec!["select [k] -> id() as nz".to_string()]);
        assert_eq!(p.input_passes, 2);
        assert!(p.to_string().contains("single pass"));
    }
}
