//! Prints the generated conversion routines for the three pairs shown in
//! Figure 6 of the paper (plus COO->ELL, which exercises counter arrays), as
//! C-like listings.
//!
//! Run with `cargo run --example codegen_dump`.

use taco_conversion_repro::conv::codegen;
use taco_conversion_repro::conv::convert::FormatId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pairs = [
        (FormatId::Csr, FormatId::Dia, "Figure 6a"),
        (FormatId::Csr, FormatId::Ell, "Figure 6b"),
        (FormatId::Coo, FormatId::Csr, "Figure 6c"),
        (FormatId::Coo, FormatId::Ell, "counter-array variant"),
    ];
    for (source, target, note) in pairs {
        println!("// ===== {source} -> {target} ({note}) =====");
        println!("{}", codegen::listing(source, target)?);
    }
    Ok(())
}
