//! Quickstart: build a sparse matrix, convert it between formats, and
//! inspect the conversion plan.
//!
//! Run with `cargo run --example quickstart`.

use taco_conversion_repro::conv::prelude::*;
use taco_conversion_repro::formats::CooMatrix;
use taco_conversion_repro::tensor::SparseTriples;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Import data as COO triples (cheap appends), the way an application
    // would load a matrix from disk.
    let triples = SparseTriples::from_matrix_entries(
        6,
        6,
        vec![
            (0, 0, 2.0),
            (0, 1, -1.0),
            (1, 0, -1.0),
            (1, 1, 2.0),
            (1, 2, -1.0),
            (2, 1, -1.0),
            (2, 2, 2.0),
            (3, 3, 2.0),
            (4, 4, 2.0),
            (5, 5, 2.0),
            (5, 0, 0.5),
        ],
    )?;
    let coo = AnyTensor::Coo(CooMatrix::from_triples(&triples));

    // Convert to the formats evaluated in the paper. Stock formats are
    // registry presets with `Format` constructors.
    for target in [Format::csr(), Format::csc(), Format::dia(), Format::ell()] {
        let converted = convert(&coo, &target)?;
        println!(
            "converted {} -> {}: {} stored nonzeros",
            coo.format(),
            converted.format(),
            converted.nnz()
        );
        assert!(converted.to_triples().same_values(&triples));
    }

    // Inspect the decisions the planner makes for COO -> ELL.
    let plan = plan_for(&coo, Format::ell())?;
    println!("\n{plan}");
    Ok(())
}
