//! Stats-driven format selection and mode-ordered CSF.
//!
//! `auto_select` reads a tensor's structural statistics (density, fiber
//! skew, bandwidth, block fill) and picks the storage format those
//! statistics pay for — including, for order-3 tensors, the CSF mode
//! ordering that minimises the fiber tree's interior size. This example
//! runs it over the `conv-workloads` generators and converts each input
//! into its chosen format.

use taco_conversion_repro::conv::prelude::*;
use taco_conversion_repro::formats::{CooMatrix, CooTensor};
use taco_conversion_repro::workloads::{banded, tensor3_fibered, tensor3_uniform};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let inputs = vec![
        (
            "uniform random order-3 (no fiber structure)",
            AnyTensor::Coo3(CooTensor::from_triples(&tensor3_uniform(
                [30, 30, 30],
                1000,
                7,
            )?)),
        ),
        (
            "fibered order-3 (few roots, long fibers)",
            AnyTensor::Coo3(CooTensor::from_triples(&tensor3_fibered(
                [16, 32, 64],
                4,
                8,
                7,
            )?)),
        ),
        (
            "tridiagonal matrix (banded)",
            AnyTensor::Coo(CooMatrix::from_triples(&banded(64, 64, &[0, 1, -1], 5)?)),
        ),
    ];

    for (label, src) in inputs {
        let target = auto_select(&src);
        let converted = convert(&src, &target)?;
        println!(
            "{label}\n  -> {} ({} stored nonzeros)",
            target.name(),
            converted.nnz()
        );
        // Whatever was picked, the values survive the round trip.
        assert!(converted.to_triples().same_values(&src.to_triples()));
    }

    // Mode-ordered CSF handles are ordinary formats: build them directly or
    // parse the `CSF@...` spelling (the identity order is stock CSF).
    let skewed: Format = "CSF@2,0,1".parse()?;
    println!(
        "parsed {} (mode order {:?})",
        skewed.name(),
        skewed.mode_order().expect("permuted CSF has a mode order")
    );
    assert_eq!("CSF@0,1,2".parse::<Format>()?, Format::csf());
    Ok(())
}
