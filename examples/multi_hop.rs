//! Multi-hop routing: the conversion service planning a chain over the
//! format graph instead of running the pairwise kernel directly.
//!
//! A shuffled COO matrix heading for a blocked format is the planner's
//! flagship case: BCSR's block analysis is much cheaper when fed row-major
//! input, so the cost model routes `COO → CSR → BCSR4x4` — two cheap hops —
//! below the one expensive direct kernel. The example seeds the cost model
//! from the committed benchmark document (the same calibration the service
//! applies online), prints the planned path and its per-hop spans, and
//! cross-checks the chained result against the direct engine.
//!
//! Run with `cargo run --release --example multi_hop`.

use taco_conversion_repro::conv::convert::{convert, AnyMatrix};
use taco_conversion_repro::conv::{Format, TensorProfile};
use taco_conversion_repro::formats::CooMatrix;
use taco_conversion_repro::planner::{PlannerConfig, TensorAttrs};
use taco_conversion_repro::runtime::{ConversionService, Route, ServiceConfig};
use taco_conversion_repro::tensor::SparseTriples;
use taco_conversion_repro::workloads::generators::irregular;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An irregular (circuit-like) matrix with its entry order destroyed —
    // the load order a parallel reader or a hash-partitioned pipeline
    // produces.
    let triples = irregular(512, 512, 40_000, 128, 42)?;
    let mut entries: Vec<(Vec<i64>, f64)> = triples
        .iter()
        .map(|tr| (tr.coord.to_vec(), tr.value))
        .collect();
    let n = entries.len();
    for i in 0..n {
        let j = ((i as u64).wrapping_mul(6364136223846793005).wrapping_add(1) >> 16) as usize % n;
        entries.swap(i, j);
    }
    let mut shuffled = SparseTriples::new(triples.shape().clone());
    for (coord, value) in entries {
        shuffled.push(coord, value)?;
    }
    let src = AnyMatrix::Coo(CooMatrix::from_triples(&shuffled));
    let target: Format = "BCSR4x4".parse()?;

    let service = ConversionService::new(ServiceConfig::with_threads(2));

    // Seed the cost model from the committed benchmark rows: single-thread
    // direct measurements become calibration observations for their edges.
    let seeded = service
        .format_graph()
        .seed_from_bench_json(include_str!("../BENCH_conversions.json"));
    println!("seeded the cost model from {seeded} committed benchmark rows");

    // One stats pass serves both the format selector and the planner.
    let profile = TensorProfile::compute(&src);
    println!(
        "auto_select would store this matrix as {}; densest row holds {} nonzeros",
        profile.selected,
        profile.max_nnz_per_row.unwrap_or(0)
    );
    let attrs = TensorAttrs::from_matrix(&src).with_profile(&profile);
    let cfg = PlannerConfig {
        threads: 2,
        ..PlannerConfig::default()
    };
    if let Some(plan) = service
        .format_graph()
        .plan_route(&src.format(), &target, &attrs, &cfg)
    {
        println!(
            "planned route: {} ({:.0} cost units)",
            plan.names().join(" -> "),
            plan.cost_units
        );
    }

    // The service takes the same route on its own.
    match service.route_for(&src, target.clone())? {
        Route::MultiHop(path) => {
            let names: Vec<String> = path.iter().map(|f| f.to_string()).collect();
            println!("service routes multi-hop: {}", names.join(" -> "));
        }
        other => println!("service routes {other:?}"),
    }

    let (chained, report) = service.convert_traced(&src, target.clone())?;
    println!(
        "converted {} -> {} over route `{}` (path {}), {} nonzeros",
        report.source,
        report.target,
        report.route,
        report.path.join(" -> "),
        chained.nnz()
    );

    // The chain is a pure optimisation: bytes identical to the direct
    // engine.
    let direct = convert(&src, &target)?;
    assert_eq!(chained, direct, "multi-hop output must match direct");
    println!("multi-hop result is bit-identical to the direct conversion");

    let stats = service.stats();
    println!(
        "service stats: {} conversions, {} multi-hop, {} via-COO",
        stats.conversions, stats.multi_hop, stats.via_coo
    );
    Ok(())
}
