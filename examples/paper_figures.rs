//! Reconstructs the data content of the paper's expository figures for the
//! running-example matrix of Figure 1: the four storage layouts of Figure 2
//! and the attribute-query results of Figure 10.
//!
//! Run with `cargo run --example paper_figures`.

use taco_conversion_repro::formats::{CooMatrix, CsrMatrix, DiaMatrix, EllMatrix};
use taco_conversion_repro::query::eval::evaluate_on_coords;
use taco_conversion_repro::query::parse_query;
use taco_conversion_repro::tensor::example::figure1_matrix;
use taco_conversion_repro::tensor::DimBounds;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let m = figure1_matrix();
    println!("Figure 1 matrix (4x6, 9 nonzeros):");
    let dense = m.to_dense();
    for i in 0..4 {
        let row: Vec<String> = (0..6).map(|j| format!("{:>3}", dense.get(i, j))).collect();
        println!("  {}", row.join(" "));
    }

    println!("\nFigure 2a (COO):");
    let coo = CooMatrix::from_triples(&m);
    println!("  rows: {:?}", coo.row_indices());
    println!("  cols: {:?}", coo.col_indices());
    println!("  vals: {:?}", coo.values());

    println!("\nFigure 2b (CSR):");
    let csr = CsrMatrix::from_triples(&m);
    println!("  pos:  {:?}", csr.pos());
    println!("  crd:  {:?}", csr.crd());
    println!("  vals: {:?}", csr.values());

    println!("\nFigure 2c (DIA):");
    let dia = DiaMatrix::from_triples(&m);
    println!("  perm: {:?}", dia.offsets());
    println!("  vals: {:?}", dia.values());

    println!("\nFigure 2d (ELL):");
    let ell = EllMatrix::from_triples(&m);
    println!("  K:    {}", ell.slices());
    println!("  crd:  {:?}", ell.crd());
    println!("  vals: {:?}", ell.values());

    println!("\nFigure 10 attribute queries:");
    let names = vec!["i".to_string(), "j".to_string()];
    let bounds = vec![DimBounds::from_extent(4), DimBounds::from_extent(6)];
    let coords: Vec<Vec<i64>> = m.iter().map(|t| t.coord.clone()).collect();
    for text in [
        "select [i] -> count(j) as nir",
        "select [i] -> min(j) as minir, max(j) as maxir",
        "select [j] -> id() as ne",
    ] {
        let query = parse_query(text)?;
        let result =
            evaluate_on_coords(&query, &names, &bounds, coords.iter().map(|c| c.as_slice()))?;
        println!("  {text}");
        for label in result.labels() {
            println!("    {label}: {:?}", result.field_data(label)?);
        }
    }
    Ok(())
}
