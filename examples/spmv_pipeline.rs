//! The motivating pipeline of Section 1: import a matrix in COO, convert it
//! to a compute-friendly format, and run SpMV repeatedly. Conversion cost
//! must be low for the format switch to pay off, which is exactly what the
//! paper's generated routines provide.
//!
//! Run with `cargo run --release --example spmv_pipeline`.

use std::time::Instant;

use taco_conversion_repro::conv::engine;
use taco_conversion_repro::formats::{spmv, CooMatrix};
use taco_conversion_repro::workloads::table2;

fn main() {
    // A banded stencil matrix (the `denormal` stand-in from Table 2) at a
    // laptop-friendly scale.
    let spec = table2()
        .into_iter()
        .find(|s| s.name == "denormal")
        .expect("in suite");
    let triples = spec.generate(0.05);
    let coo = CooMatrix::from_triples(&triples);
    let x: Vec<f64> = (0..coo.cols()).map(|j| (j % 10) as f64).collect();

    // Convert once with the generated routines.
    let start = Instant::now();
    let csr = engine::to_csr(&coo);
    let csr_conv = start.elapsed();
    let start = Instant::now();
    let dia = engine::to_dia(&coo).expect("DIA conversion");
    let dia_conv = start.elapsed();

    // Run SpMV in each format.
    let reps = 20;
    let time_spmv = |f: &dyn Fn() -> Vec<f64>| {
        let start = Instant::now();
        let mut y = Vec::new();
        for _ in 0..reps {
            y = f();
        }
        (start.elapsed() / reps, y)
    };
    let (coo_time, y_coo) = time_spmv(&|| spmv::spmv_coo(&coo, &x));
    let (csr_time, y_csr) = time_spmv(&|| spmv::spmv_csr(&csr, &x));
    let (dia_time, y_dia) = time_spmv(&|| spmv::spmv_dia(&dia, &x));
    // The formats accumulate in different orders, so allow floating-point
    // rounding differences.
    let close = |a: &[f64], b: &[f64]| a.iter().zip(b).all(|(x, y)| (x - y).abs() < 1e-9);
    assert!(close(&y_coo, &y_csr));
    assert!(close(&y_coo, &y_dia));

    println!(
        "matrix: {} stand-in, {} rows, {} nonzeros",
        spec.name,
        coo.rows(),
        coo.nnz()
    );
    println!("conversion COO->CSR: {csr_conv:?}   COO->DIA: {dia_conv:?}");
    println!("SpMV per iteration: COO {coo_time:?}   CSR {csr_time:?}   DIA {dia_time:?}");
    let fastest = csr_time.min(dia_time);
    if fastest < coo_time {
        let break_even =
            dia_conv.min(csr_conv).as_secs_f64() / (coo_time.as_secs_f64() - fastest.as_secs_f64());
        println!("conversion pays for itself after ~{break_even:.1} SpMV iterations");
    } else {
        println!("(timings too noisy on this run to estimate the break-even point)");
    }
}
