//! Defining a *custom* target format from scratch — the extensibility story
//! of Section 3: a user supplies only (1) a coordinate remapping, (2) the
//! level format of each remapped dimension, and the system assembles the new
//! format without any per-pair conversion code.
//!
//! Here we define a 2x2-blocked format whose blocks are interned in a hash
//! level (a DOK-of-dense-blocks layout), plus a banded skyline format, and
//! convert the same matrix into both.
//!
//! Run with `cargo run --example custom_format`.

use taco_conversion_repro::conv::convert::{AnyMatrix, FormatId};
use taco_conversion_repro::conv::generic::{convert_with_spec, LevelOutput};
use taco_conversion_repro::conv::spec::FormatSpec;
use taco_conversion_repro::formats::CsrMatrix;
use taco_conversion_repro::levels::LevelKind;
use taco_conversion_repro::remap::parse_remapping;
use taco_conversion_repro::tensor::SparseTriples;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let triples = SparseTriples::from_matrix_entries(
        8,
        8,
        vec![
            (0, 0, 1.0),
            (0, 1, 2.0),
            (1, 0, 3.0),
            (2, 2, 4.0),
            (3, 3, 5.0),
            (4, 0, 6.0),
            (5, 5, 7.0),
            (6, 6, 8.0),
            (7, 6, 9.0),
            (7, 7, 10.0),
        ],
    )?;
    let src = AnyMatrix::Csr(CsrMatrix::from_triples(&triples));

    // A custom blocked format: 2x2 tiles, tiles interned in a hash level,
    // tile contents dense. The remapping is written in coordinate remapping
    // notation exactly as a user of the paper's system would write it.
    let remapping = parse_remapping("(i,j) -> (i/2,j/2,i%2,j%2)")?;
    let blocked = FormatSpec::new(
        "DOK-of-blocks",
        remapping,
        vec!["bi", "bj", "li", "lj"],
        vec![
            LevelKind::Dense,
            LevelKind::Hashed,
            LevelKind::Dense,
            LevelKind::Dense,
        ],
    );
    let tensor = convert_with_spec(&src, &blocked)?;
    println!("custom format `{}`:", tensor.spec.name);
    println!(
        "  required queries: {:?}",
        blocked
            .required_queries()
            .iter()
            .map(|q| q.to_string())
            .collect::<Vec<_>>()
    );
    if let LevelOutput::Hashed { coords } = &tensor.levels[1] {
        println!("  {} nonzero 2x2 blocks interned", coords.len());
    }
    println!(
        "  {} stored values ({} nonzero)",
        tensor.vals.len(),
        tensor.vals.iter().filter(|&&v| v != 0.0).count()
    );

    // The stock skyline spec works through exactly the same machinery.
    let sky = FormatSpec::stock(FormatId::Skyline)?;
    let tensor = convert_with_spec(&src, &sky)?;
    if let LevelOutput::Banded { pos, first } = &tensor.levels[1] {
        println!("\nskyline format: row runs {pos:?}");
        println!("  first stored column per row: {first:?}");
    }
    Ok(())
}
