//! Defining a *custom* format from scratch — the extensibility story of
//! Section 3: a user supplies only (1) a coordinate remapping and (2) the
//! level format of each remapped dimension, and the system derives the
//! attribute queries and assembles conversions without any per-pair code.
//!
//! With the spec-first API the custom format is a first-class [`Format`]:
//! built once with `Format::builder()`, it converts in **both** directions
//! through the same `convert` entry point as the stock presets, parses back
//! from its registered name, and gets plan caching in the conversion
//! service.
//!
//! Run with `cargo run --example custom_format`.

use taco_conversion_repro::conv::prelude::*;
use taco_conversion_repro::formats::CooMatrix;
use taco_conversion_repro::runtime::{ConversionService, ServiceConfig};
use taco_conversion_repro::tensor::example::figure1_matrix;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let triples = figure1_matrix();
    let coo = AnyTensor::Coo(CooMatrix::from_triples(&triples));

    // A DCSR-like format (doubly compressed sparse rows): both dimensions
    // compressed, so empty rows cost nothing. It is NOT in the stock set —
    // it exists only as this specification.
    let dcsr = Format::builder("DCSR")
        .remap_str("(i,j) -> (i,j)")?
        .dims(["i", "j"])
        .levels([LevelKind::Compressed, LevelKind::Compressed])
        .build()?;
    println!(
        "registered custom format `{dcsr}` (fingerprint {:016x})",
        dcsr.fingerprint()
    );
    let spec = dcsr.spec().expect("builder formats carry their spec");
    println!(
        "  derived attribute queries: {:?}",
        spec.required_queries()
            .iter()
            .map(|q| q.to_string())
            .collect::<Vec<_>>()
    );

    // Convert the Figure 1 matrix INTO the custom format...
    let packed = convert(&coo, &dcsr)?;
    println!("\nFigure 1 matrix packed into {}:", packed.format());
    if let AnyTensor::Custom(t) = &packed {
        for (k, level) in t.levels.iter().enumerate() {
            println!("  level {k}: {level:?}");
        }
        println!("  vals: {:?}", t.vals);
    }

    // ...and back OUT: a builder format is a valid conversion *source*.
    let back = convert(&packed, Format::csr())?;
    assert!(back.to_triples().same_values(&triples));
    println!(
        "\nround-trip through CSR preserves all {} nonzeros",
        back.nnz()
    );

    // The registered name parses back to the same format, so CLI tools (the
    // table2/table4 bench binaries) can select it like any stock name.
    let reparsed: Format = "DCSR".parse()?;
    assert_eq!(reparsed, dcsr);

    // The conversion service caches plans for custom formats exactly like
    // stock ones: the second conversion is a plan hit.
    let service = ConversionService::new(ServiceConfig::with_threads(2));
    service.convert(&coo, &dcsr)?;
    service.convert(&coo, &dcsr)?;
    let stats = service.stats();
    assert_eq!(stats.plan_misses, 1);
    assert_eq!(stats.plan_hits, 1);
    println!(
        "service: {} conversions, {} plan miss, {} plan hit (plans are cached per spec fingerprint)",
        stats.conversions, stats.plan_misses, stats.plan_hits
    );

    // A second custom format, from the same machinery: a banded profile
    // format (dense rows, banded columns) defined via a spec string — the
    // form the bench binaries accept on the command line.
    let banded: Format = "BANDED:(i,j)->(i,j):i,j:dense,banded".parse()?;
    let lower = taco_conversion_repro::tensor::SparseTriples::from_matrix_entries(
        4,
        4,
        vec![
            (0, 0, 1.0),
            (1, 1, 2.0),
            (2, 0, 3.0),
            (2, 2, 4.0),
            (3, 2, 5.0),
            (3, 3, 6.0),
        ],
    )?;
    let src = AnyTensor::Coo(CooMatrix::from_triples(&lower));
    let profile = convert(&src, &banded)?;
    println!("\nlower-triangular matrix in custom `{banded}`:");
    if let AnyTensor::Custom(t) = &profile {
        for (k, level) in t.levels.iter().enumerate() {
            println!("  level {k}: {level:?}");
        }
    }
    let back = convert(&profile, Format::coo())?;
    assert!(back.to_triples().same_values(&lower));
    println!(
        "round-trip through COO preserves all {} nonzeros",
        back.nnz()
    );
    Ok(())
}
