//! Out-of-core streaming conversion quickstart: convert a Matrix Market
//! file to CSR, and a FROSTT tensor file to CSF, under a memory budget a
//! fraction of the input's size — without ever materialising the input.
//!
//! Run with `cargo run --release --example stream_convert`. The example
//! writes its own input files to a temp directory, so it needs no external
//! data.

use taco_conversion_repro::conv::convert::{AnyMatrix, FormatId};
use taco_conversion_repro::formats::{CooMatrix, CooTensor};
use taco_conversion_repro::obs::PhaseReport;
use taco_conversion_repro::runtime::{ConversionService, ServiceConfig, StreamOptions};
use taco_conversion_repro::stream::MemoryBudget;
use taco_conversion_repro::tensor::Shape;
use taco_conversion_repro::workloads::io::{tns_dims, write_mtx, write_tns, MtxStream, TnsStream};

/// Prints the conversion's per-phase span tree (recorded by `conv-obs`),
/// indented by depth.
fn print_phases(phases: &[PhaseReport], depth: usize) {
    for phase in phases {
        println!(
            "  {:indent$}{:<20} {:>9.1} µs  ({} items)",
            "",
            phase.name,
            phase.duration_ns as f64 / 1e3,
            phase.count,
            indent = 2 * depth
        );
        print_phases(&phase.children, depth + 1);
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("stream-convert-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let service = ConversionService::new(ServiceConfig::with_threads(4));

    // --- Matrix Market -> CSR under an 8 KiB budget ---------------------
    // 4000 entries * 24 B = ~94 KiB of sort working set: ~12x the budget,
    // so the external sort must spill runs to disk.
    let mtx_path = dir.join("example.mtx");
    let mut matrix = CooMatrix::new(512, 512);
    for p in 0..4000usize {
        matrix.push((p * 37) % 512, (p * 101) % 512, p as f64 * 0.25);
    }
    write_mtx(&mtx_path, &matrix)?;

    let budget = MemoryBudget::kib(8);
    let opts = StreamOptions {
        budget,
        channel_blocks: 2,
        spill_dir: Some(dir.clone()),
    };
    // Small blocks keep the in-flight working set (producer + channel +
    // one worker group) inside the budget's headroom quarter.
    let stream = MtxStream::open(&mtx_path, 8)?;
    let result = service.convert_stream(stream, FormatId::Csr, &opts)?;
    println!(
        "{} -> CSR: {} nnz via {} blocks, {} spill runs ({} KiB), peak working set {} B (budget {} B){}",
        mtx_path.display(),
        result.tensor.nnz(),
        result.stats.blocks,
        result.stats.spilled_runs,
        result.stats.spilled_bytes / 1024,
        result.stats.peak_tracked_bytes,
        budget.bytes,
        if result.stats.in_memory { " [in-memory]" } else { "" },
    );
    assert!(result.stats.peak_tracked_bytes < budget.bytes);
    // The observability layer recorded where the time went.
    if let Some(report) = service.last_report() {
        println!(
            "  report: route {}, {} thread(s), total {:.1} µs, {} spill runs",
            report.route,
            report.threads,
            report.total_ns as f64 / 1e3,
            report.spilled_runs
        );
        print_phases(&report.phases, 1);
    }
    // The streamed result is byte-identical to the in-memory conversion.
    let in_memory = service.convert(&AnyMatrix::Coo(matrix), FormatId::Csr)?;
    assert_eq!(result.tensor, in_memory);
    println!("  byte-identical to the in-memory conversion");

    // --- FROSTT .tns -> CSF under the same budget ------------------------
    let tns_path = dir.join("example.tns");
    let mut tensor = CooTensor::new(Shape::tensor3(64, 64, 64));
    for p in 0..3000usize {
        tensor.push(&[(p * 7) % 64, (p * 31) % 64, (p * 13) % 64], p as f64);
    }
    write_tns(&tns_path, &tensor)?;

    // FROSTT files carry no dimensions; one streaming scan discovers them.
    let (shape, nnz) = tns_dims(&tns_path)?;
    println!(
        "{} -> CSF: scanned shape {} with {} nnz",
        tns_path.display(),
        shape,
        nnz
    );
    let stream = TnsStream::open(&tns_path, shape, 8)?;
    let result = service.convert_stream(stream, FormatId::Csf, &opts)?;
    println!(
        "  {} nnz packed, {} spill runs, peak working set {} B{}",
        result.tensor.nnz(),
        result.stats.spilled_runs,
        result.stats.peak_tracked_bytes,
        if result.stats.in_memory {
            " [in-memory]"
        } else {
            ""
        },
    );
    assert!(result.stats.peak_tracked_bytes < budget.bytes);
    let in_memory = service.convert(&AnyMatrix::Coo3(tensor), FormatId::Csf)?;
    assert_eq!(result.tensor, in_memory);
    println!("  byte-identical to the in-memory conversion");

    let stats = service.stats();
    println!(
        "service: {} streams, {} spill runs, {} KiB spilled, peak {} B",
        stats.streams,
        stats.stream_spilled_runs,
        stats.stream_spilled_bytes / 1024,
        stats.stream_peak_bytes
    );
    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
