//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! This environment has no network access, so the workspace vendors the small
//! API subset its benches use: [`Criterion`], [`BenchmarkGroup`] with
//! `sample_size`/`warm_up_time`/`measurement_time`, `bench_function`,
//! `bench_with_input`, [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement model: each benchmark is calibrated with a single timed call,
//! an iteration count is chosen so one sample lasts roughly
//! `measurement_time / sample_size`, and the median per-iteration time over
//! `sample_size` samples is printed. Measurement only happens when the
//! binary is invoked with `--bench` (which `cargo bench` passes); under
//! `cargo test --benches` cargo runs the binary with no arguments, and every
//! benchmark body then runs exactly once with nothing measured, so benches
//! stay compile- and run-checked without slowing the test suite down. This
//! mirrors upstream criterion's behavior.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion's optimisation barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group: a function (implementation) name
/// plus a parameter (input) name.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from an implementation label and an input label.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Timing state handed to a benchmark body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    test_mode: bool,
}

impl Bencher {
    /// Runs `f` for the sample's iteration count and records the elapsed time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            self.elapsed = Duration::from_nanos(1);
            return;
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

#[derive(Clone)]
struct Settings {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    test_mode: bool,
}

impl Settings {
    fn run<F: FnMut(&mut Bencher)>(&self, label: &str, mut f: F) {
        if self.test_mode {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
                test_mode: true,
            };
            f(&mut b);
            println!("test {label} ... ok");
            return;
        }
        // Calibrate: one iteration, also serving as warm-up.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
            test_mode: false,
        };
        let warm_up_start = Instant::now();
        f(&mut b);
        while warm_up_start.elapsed() < self.warm_up_time {
            f(&mut b);
        }
        let per_iter = b.elapsed.max(Duration::from_nanos(1));
        let budget = self.measurement_time.max(Duration::from_millis(1));
        let per_sample = budget / self.sample_size.max(1) as u32;
        let iters = (per_sample.as_nanos() / per_iter.as_nanos()).clamp(1, u64::MAX as u128) as u64;

        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size.max(1) {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
                test_mode: false,
            };
            f(&mut b);
            samples.push(Duration::from_nanos(
                (b.elapsed.as_nanos() / iters as u128) as u64,
            ));
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        let best = samples[0];
        println!("{label:<60} median {median:>12?}   best {best:>12?}   ({iters} iters/sample)");
    }
}

/// Top-level harness state, one per bench executable.
pub struct Criterion {
    settings: Settings,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` invokes the binary with `--bench`; `cargo test
        // --benches` invokes it with no arguments. Only measure in the
        // former case, like upstream criterion.
        let test_mode = !std::env::args().any(|a| a == "--bench");
        Criterion {
            settings: Settings {
                sample_size: 100,
                warm_up_time: Duration::from_secs(3),
                measurement_time: Duration::from_secs(5),
                test_mode,
            },
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            settings: self.settings.clone(),
            _parent: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.settings.run(name, f);
        self
    }
}

/// A named group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n;
        self
    }

    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up_time = d;
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        self.settings.run(&label, f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `id` within this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        self.settings.run(&label, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Collects benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Defines `main` for a bench executable from one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
