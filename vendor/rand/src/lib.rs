//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! This environment has no network access, so the workspace vendors the small
//! API subset it actually uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`] for `f64`, and [`Rng::gen_range`] over integer ranges. The
//! generator is a SplitMix64 — statistically fine for synthesising test
//! matrices, deterministic per seed, and dependency-free. It is **not** the
//! same stream as upstream `StdRng` (ChaCha12), so seeds are compatible in
//! spirit (same-seed determinism) but not bit-for-bit.

use std::ops::Range;

/// Low-level random source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates a generator seeded from `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from 64 random bits.
pub trait Standard: Sized {
    /// Maps 64 random bits to a value.
    fn from_bits(bits: u64) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn from_bits(bits: u64) -> Self {
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn from_bits(bits: u64) -> Self {
        bits
    }
}

/// Integer types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy {
    /// Samples uniformly from `range` given 64 random bits.
    fn sample_range(bits: u64, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(bits: u64, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty gen_range");
                let span = range.end.wrapping_sub(range.start) as u64;
                range.start + (bits % span) as $t
            }
        }
    )*};
}

impl_sample_uniform!(usize, u64, u32);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(bits: u64, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty gen_range");
                let span = (range.end as i64).wrapping_sub(range.start as i64) as u64;
                range.start.wrapping_add((bits % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_signed!(i64, i32);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the uniform "standard" distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_bits(self.next_u64())
    }

    /// Samples uniformly from a half-open integer range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self.next_u64(), range)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&y));
        }
    }
}
