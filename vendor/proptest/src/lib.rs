//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! This environment has no network access, so the workspace vendors the small
//! API subset its tests use: the [`strategy::Strategy`] trait with `prop_map` and
//! `prop_flat_map`, range and tuple strategies, [`collection::vec`],
//! [`test_runner::ProptestConfig`], the [`proptest!`] macro, and the
//! `prop_assert*` macros.
//!
//! Semantics differ from upstream in two deliberate ways:
//!
//! * **no shrinking** — a failing case panics with the generated input's
//!   `Debug` representation instead of a minimised counterexample, and
//! * **fixed seed** — generation is deterministic across runs, so failures
//!   are reproducible without a persistence file.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Defines property tests: each `fn name(pat in strategy) { body }` becomes a
/// `#[test]` that evaluates `body` against `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]; matches one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $config:expr;) => {};
    (config = $config:expr;
     $(#[$meta:meta])*
     fn $name:ident($pat:pat in $strat:expr) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut runner = $crate::test_runner::TestRunner::new(config);
            let strat = $strat;
            for case in 0..runner.cases() {
                let value = $crate::strategy::Strategy::new_value(&strat, &mut runner);
                let debug_repr = format!("{:?}", value);
                let $pat = value;
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
                if let Err(panic) = result {
                    eprintln!(
                        "proptest case {}/{} failed for input: {}",
                        case + 1,
                        runner.cases(),
                        debug_repr
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
}
