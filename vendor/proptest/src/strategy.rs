//! The [`Strategy`] trait and the combinators / primitive strategies the
//! workspace tests use.

use std::ops::Range;

use crate::test_runner::TestRunner;

/// A generator of values of type `Self::Value`.
///
/// Unlike upstream proptest there is no intermediate value tree and no
/// shrinking: a strategy simply produces a value from the runner's RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Generates an intermediate value, builds a second strategy from it with
    /// `f`, and generates the final value from that strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.source.new_value(runner))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn new_value(&self, runner: &mut TestRunner) -> T::Value {
        let inner = (self.f)(self.source.new_value(runner));
        inner.new_value(runner)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, runner: &mut TestRunner) -> $t {
                runner.rng_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u32, u64, i32, i64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(runner),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
