//! Collection strategies (`proptest::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRunner;

/// Strategy producing `Vec`s whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Creates a [`VecStrategy`]; mirrors `proptest::collection::vec`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, runner: &mut TestRunner) -> Vec<S::Value> {
        let len = if self.size.is_empty() {
            self.size.start
        } else {
            runner.rng_range(self.size.clone())
        };
        (0..len).map(|_| self.element.new_value(runner)).collect()
    }
}
