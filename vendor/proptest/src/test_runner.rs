//! Test-runner configuration and RNG state.

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng};

/// Configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Creates a configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 256 cases, overridable through the `PROPTEST_CASES` environment
    /// variable (long-run CI jobs boost it without touching test code).
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// Per-property runner: the configuration plus the RNG strategies draw from.
pub struct TestRunner {
    config: ProptestConfig,
    rng: StdRng,
}

impl TestRunner {
    /// Creates a runner with a fixed seed so failures reproduce across runs.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner {
            config,
            rng: StdRng::seed_from_u64(0x70726f7074657374),
        }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// Draws a value uniformly from a half-open integer range.
    pub fn rng_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        self.rng.gen_range(range)
    }
}
