//! Umbrella crate for the PLDI 2020 sparse tensor format conversion reproduction.
//!
//! Re-exports the public API of all workspace crates so examples and integration
//! tests can use a single dependency.
pub use attr_query as query;
pub use conv_ir as ir;
pub use conv_planner as planner;
pub use conv_runtime as runtime;
pub use conv_stream as stream;
pub use conv_workloads as workloads;
pub use coord_remap as remap;
pub use level_formats as levels;
pub use obs;
pub use sparse_conv as conv;
pub use sparse_formats as formats;
pub use sparse_tensor as tensor;
